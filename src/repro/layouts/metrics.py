"""Layout quality metrics — the paper's Conditions 2-4 measurements.

* Condition 2 (parity balance): per-disk *parity overhead*, the fraction
  of a disk's units that are parity; the paper's metric is its maximum
  over disks.
* Condition 3 (reconstruction balance): per-pair *reconstruction
  workload*, the fraction of one disk read while rebuilding another;
  metric is the maximum over ordered pairs.
* Condition 4 (mapping efficiency): the layout size (units per disk),
  which is the lookup-table row count.

The stripe-disk incidence is held sparse: :class:`StripeIncidence` is a
CSR-style ``(indptr, disks, offsets)`` triple built with pure NumPy, so
the co-crossing matrix ``C = Mᵀ M`` is accumulated per stripe-size
group with ``bincount`` over disk-pair keys — memory is ``O(nnz)``, not
``O(b × v)``, and layouts with 10^6+ stripes evaluate without ever
densifying the incidence.  The same CSR arrays power the simulator's
batched rebuild scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from .identity_cache import identity_lru_cache
from .layout import Layout

__all__ = [
    "LayoutMetrics",
    "StripeIncidence",
    "stripe_incidence",
    "parity_counts",
    "parity_overheads",
    "cocrossing_matrix",
    "reconstruction_workloads",
    "evaluate_layout",
]


@dataclass(frozen=True)
class StripeIncidence:
    """Sparse (CSR) stripe-disk incidence of a layout.

    Row ``s`` spans ``disks[indptr[s]:indptr[s+1]]`` /
    ``offsets[indptr[s]:indptr[s+1]]`` — the stripe's units in unit
    order, exactly as ``layout.stripes[s].units`` stores them.

    The accumulation kernels assume Condition 1 (at most one unit per
    disk per stripe, what ``Layout.validate`` enforces); for
    non-conforming layouts the co-crossing counts count *units*, not
    distinct disks, and :meth:`rebuild_scan` is undefined.

    Attributes:
        v: number of disks (columns).
        size: units per disk.
        b: number of stripes (rows).
        indptr: ``(b+1,)`` row pointers.
        disks: ``(nnz,)`` unit disks, concatenated in stripe order.
        offsets: ``(nnz,)`` unit offsets, same order.
        parity_ptr: ``(b,)`` index into ``disks``/``offsets`` of each
            stripe's parity unit.
    """

    v: int
    size: int
    b: int
    indptr: np.ndarray
    disks: np.ndarray
    offsets: np.ndarray
    parity_ptr: np.ndarray

    @property
    def nnz(self) -> int:
        """Stored units (sum of stripe sizes)."""
        return int(self.indptr[-1])

    def stripe_lengths(self) -> np.ndarray:
        """Per-stripe unit count (the paper's ``k_s``), vectorized."""
        return np.diff(self.indptr)

    def stripe_of_unit(self) -> np.ndarray:
        """``(nnz,)`` stripe id of each stored unit."""
        return np.repeat(np.arange(self.b, dtype=np.int64), self.stripe_lengths())

    def parity_disks(self) -> np.ndarray:
        """``(b,)`` parity disk of each stripe."""
        return self.disks[self.parity_ptr]

    def parity_counts(self) -> np.ndarray:
        """Parity units per disk (Condition 2 counts)."""
        return np.bincount(self.parity_disks(), minlength=self.v)

    def crossing_counts(self) -> np.ndarray:
        """Stripes crossing each disk (the co-crossing diagonal)."""
        return np.bincount(self.disks, minlength=self.v)

    def cocross(self) -> np.ndarray:
        """Dense ``(v, v)`` co-crossing matrix ``C`` — ``C[i, j]`` is the
        number of stripes with units on both disks ``i`` and ``j``.

        ``v × v`` is small (disks, not stripes); the accumulation walks
        the CSR arrays one stripe-size group at a time and never builds
        a ``b × v`` (let alone ``b × b``) dense intermediate.
        """
        v = self.v
        upper = np.zeros(v * v, dtype=np.int64)
        lengths = self.stripe_lengths()
        starts = self.indptr[:-1]
        for k in np.unique(lengths):
            if k < 2:
                continue
            sel = starts[lengths == k]
            rows = self.disks[sel[:, None] + np.arange(k, dtype=np.int64)]
            iu, ju = np.triu_indices(int(k), 1)
            keys = rows[:, iu] * v + rows[:, ju]
            upper += np.bincount(keys.ravel(), minlength=v * v)
        c = upper.reshape(v, v)
        c = c + c.T
        np.fill_diagonal(c, self.crossing_counts())
        return c

    def workloads(self) -> np.ndarray:
        """Reconstruction-workload matrix ``W[i, j]``: fraction of disk
        ``j`` read when disk ``i`` fails (diagonal zero) — the single
        home of the ``W = C / size`` formula."""
        c = self.cocross().astype(np.float64)
        np.fill_diagonal(c, 0.0)
        return c / float(self.size)

    def rebuild_scan(
        self, failed_disk: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Plan every read of a failed disk's rebuild in one vectorized
        pass.

        Returns ``(sids, failed_offsets, surv_indptr, surv_disks,
        surv_offsets)``: the crossing stripe ids in ascending order, the
        failed disk's unit offset per crossing stripe, and a CSR triple
        of each crossing stripe's surviving units in unit order (what
        the rebuild must read).
        """
        hit = self.disks == failed_disk
        sid_of_unit = self.stripe_of_unit()
        sids = sid_of_unit[hit]  # <=1 hit per stripe (Condition 1)
        failed_offsets = self.offsets[hit]
        crossing = np.zeros(self.b, dtype=bool)
        crossing[sids] = True
        mask = crossing[sid_of_unit] & ~hit
        surv_lengths = self.stripe_lengths()[sids] - 1
        surv_indptr = np.zeros(len(sids) + 1, dtype=np.int64)
        np.cumsum(surv_lengths, out=surv_indptr[1:])
        return (
            sids,
            failed_offsets,
            surv_indptr,
            self.disks[mask],
            self.offsets[mask],
        )


@identity_lru_cache(maxsize=16)
def stripe_incidence(layout: Layout) -> StripeIncidence:
    """Build (and memoize) the CSR incidence of a layout.

    One pass over the stripe tuples; everything downstream is NumPy.
    The cache is keyed on layout *identity* (``id``), not value —
    hashing a 10^6-stripe layout on every probe used to dominate
    ``evaluate_layout``; an identity probe is O(1) regardless of size.
    """
    b = layout.b
    lengths = np.fromiter(
        (s.size for s in layout.stripes), dtype=np.int64, count=b
    )
    indptr = np.zeros(b + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    disks = np.fromiter(
        (d for s in layout.stripes for d, _ in s.units), dtype=np.int64, count=nnz
    )
    offsets = np.fromiter(
        (off for s in layout.stripes for _, off in s.units),
        dtype=np.int64,
        count=nnz,
    )
    parity_ptr = indptr[:-1] + np.fromiter(
        (s.parity_index for s in layout.stripes), dtype=np.int64, count=b
    )
    return StripeIncidence(
        v=layout.v,
        size=layout.size,
        b=b,
        indptr=indptr,
        disks=disks,
        offsets=offsets,
        parity_ptr=parity_ptr,
    )


def parity_counts(layout: Layout) -> list[int]:
    """Number of parity units on each disk."""
    return stripe_incidence(layout).parity_counts().tolist()


def parity_overheads(layout: Layout) -> list[Fraction]:
    """Exact per-disk parity overhead (parity units / size)."""
    return [Fraction(c, layout.size) for c in parity_counts(layout)]


def cocrossing_matrix(layout: Layout) -> np.ndarray:
    """``C[i, j]``: number of stripes with units on both disks ``i`` and
    ``j`` (diagonal: stripes crossing disk ``i``).

    Computed through the sparse incidence — no ``b × v`` dense
    intermediate is allocated.
    """
    return stripe_incidence(layout).cocross()


def reconstruction_workloads(layout: Layout) -> np.ndarray:
    """Workload matrix ``W[i, j]``: fraction of disk ``j`` read when disk
    ``i`` fails (diagonal is zero).

    A stripe crossing both disks contributes exactly one unit read from
    ``j`` (its unit there), so ``W = C / size`` off-diagonal.
    """
    return stripe_incidence(layout).workloads()


@dataclass(frozen=True)
class LayoutMetrics:
    """Summary of a layout against the paper's four conditions."""

    v: int
    size: int
    b: int
    k_min: int
    k_max: int
    parity_overhead_min: Fraction
    parity_overhead_max: Fraction
    workload_min: float
    workload_max: float
    parity_spread: int  # max - min per-disk parity count

    @property
    def parity_balanced(self) -> bool:
        """Perfectly even parity distribution (Condition 2 ideal)."""
        return self.parity_spread == 0

    @property
    def workload_balanced(self) -> bool:
        """Perfectly even reconstruction workload (Condition 3 ideal)."""
        return abs(self.workload_max - self.workload_min) < 1e-12

    def summary(self) -> str:
        """One-line report row."""
        return (
            f"v={self.v} size={self.size} b={self.b} k=[{self.k_min},{self.k_max}] "
            f"parity=[{self.parity_overhead_min},{self.parity_overhead_max}] "
            f"workload=[{self.workload_min:.4f},{self.workload_max:.4f}]"
        )


def evaluate_layout(layout: Layout) -> LayoutMetrics:
    """Compute the full metric set for a layout.

    One incidence build serves every measurement, so this scales to
    10^6-stripe layouts (the co-crossing accumulation is ``O(b·k²)``
    bincounts over ``O(nnz)`` memory).
    """
    inc = stripe_incidence(layout)
    pcounts = inc.parity_counts().tolist()
    overheads = [Fraction(c, layout.size) for c in pcounts]
    w = inc.workloads()
    offdiag = w[~np.eye(layout.v, dtype=bool)]
    lengths = inc.stripe_lengths()
    return LayoutMetrics(
        v=layout.v,
        size=layout.size,
        b=layout.b,
        k_min=int(lengths.min()),
        k_max=int(lengths.max()),
        parity_overhead_min=min(overheads),
        parity_overhead_max=max(overheads),
        workload_min=float(offdiag.min()),
        workload_max=float(offdiag.max()),
        parity_spread=max(pcounts) - min(pcounts),
    )
