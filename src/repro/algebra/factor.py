"""Integer factorization and prime-power utilities.

The constructions in Schwabe & Sutherland depend on the multiplicative
structure of the array size ``v``:

* Theorem 2 characterizes ring-based block designs through ``M(v)``, the
  smallest prime-power factor of ``v`` (:func:`min_prime_power_factor`).
* The field constructions (Theorems 4-6) require ``v`` to be a prime
  power (:func:`is_prime_power`).
* The stairway coverage search scans prime powers below ``v``
  (:func:`prime_powers_upto`, :func:`largest_prime_power_leq`).

All routines use deterministic trial division, which is exact and fast
for the magnitudes that occur in disk-array layouts (``v`` up to a few
tens of thousands).
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "is_prime",
    "prime_factorization",
    "is_prime_power",
    "prime_power_decomposition",
    "min_prime_power_factor",
    "divisors",
    "prime_powers_upto",
    "largest_prime_power_leq",
    "primes_upto",
]


def is_prime(n: int) -> bool:
    """Return ``True`` if ``n`` is a prime number.

    Deterministic trial division by 2, 3 and numbers ``6k±1`` up to
    ``sqrt(n)``.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0 or n % 3 == 0:
        return False
    f = 5
    while f * f <= n:
        if n % f == 0 or n % (f + 2) == 0:
            return False
        f += 6
    return True


@lru_cache(maxsize=65536)
def prime_factorization(n: int) -> tuple[tuple[int, int], ...]:
    """Factor ``n`` into prime powers.

    Returns a tuple of ``(prime, exponent)`` pairs in increasing prime
    order, e.g. ``prime_factorization(360) == ((2, 3), (3, 2), (5, 1))``.

    Raises:
        ValueError: if ``n < 1``.
    """
    if n < 1:
        raise ValueError(f"cannot factor non-positive integer {n}")
    factors: list[tuple[int, int]] = []
    for p in (2, 3):
        if n % p == 0:
            e = 0
            while n % p == 0:
                n //= p
                e += 1
            factors.append((p, e))
    f = 5
    while f * f <= n:
        for p in (f, f + 2):
            if n % p == 0:
                e = 0
                while n % p == 0:
                    n //= p
                    e += 1
                factors.append((p, e))
        f += 6
    if n > 1:
        factors.append((n, 1))
    return tuple(factors)


def is_prime_power(n: int) -> bool:
    """Return ``True`` if ``n = p^e`` for some prime ``p`` and ``e >= 1``."""
    return n >= 2 and len(prime_factorization(n)) == 1


def prime_power_decomposition(n: int) -> tuple[int, int]:
    """Return ``(p, e)`` such that ``n = p^e`` with ``p`` prime.

    Raises:
        ValueError: if ``n`` is not a prime power.
    """
    facs = prime_factorization(n)
    if len(facs) != 1:
        raise ValueError(f"{n} is not a prime power (factors: {facs})")
    return facs[0]


def min_prime_power_factor(v: int) -> int:
    """Return ``M(v) = min{p_i^{e_i}}`` over the prime-power factors of ``v``.

    This is the Theorem 2 bound: a ring of order ``v`` admits a
    generator set of size ``k`` if and only if ``k <= M(v)``.
    """
    return min(p**e for p, e in prime_factorization(v))


def divisors(n: int) -> list[int]:
    """Return all positive divisors of ``n`` in increasing order."""
    small: list[int] = []
    large: list[int] = []
    f = 1
    while f * f <= n:
        if n % f == 0:
            small.append(f)
            if f != n // f:
                large.append(n // f)
        f += 1
    return small + large[::-1]


def primes_upto(n: int) -> list[int]:
    """Return all primes ``<= n`` (sieve of Eratosthenes)."""
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    for p in range(2, int(math.isqrt(n)) + 1):
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
    return [i for i, flag in enumerate(sieve) if flag]


def prime_powers_upto(n: int) -> list[int]:
    """Return all prime powers ``p^e <= n`` (``e >= 1``) in increasing order."""
    out: list[int] = []
    for p in primes_upto(n):
        q = p
        while q <= n:
            out.append(q)
            q *= p
    return sorted(out)


def largest_prime_power_leq(n: int) -> int:
    """Return the largest prime power ``<= n``.

    Raises:
        ValueError: if ``n < 2`` (there is no prime power below 2).
    """
    if n < 2:
        raise ValueError(f"no prime power <= {n}")
    for q in range(n, 1, -1):
        if is_prime_power(q):
            return q
    raise AssertionError("unreachable: 2 is a prime power")
