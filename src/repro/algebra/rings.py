"""Finite commutative rings with unit.

Section 2.1 of the paper builds block designs from an arbitrary finite
commutative ring with unit ``R`` together with a set of *generators*
whose pairwise differences are invertible.  This module provides the
ring abstraction and its two non-field realizations:

* :class:`Zmod` — the integers modulo ``n``;
* :class:`CrossProductRing` — the component-wise cross product
  ``R_1 x ... x R_n`` of Lemma 3, which realizes the ``M(v)`` generator
  bound of Theorem 2 for composite ``v``.

Ring elements are opaque hashable Python values (ints for :class:`Zmod`
and the fields, tuples for cross products).  Every ring enumerates its
elements in a fixed deterministic order and exposes ``index``/``element``
to convert between ring elements and dense disk indices ``0..v-1``; the
design and layout layers work exclusively with those indices.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Sequence

from .factor import divisors

Element = Hashable

__all__ = ["NotInvertible", "Ring", "Zmod", "CrossProductRing"]


class NotInvertible(ArithmeticError):
    """Raised when asked for the multiplicative inverse of a non-unit."""


class Ring(ABC):
    """A finite commutative ring with a multiplicative unit ``1 != 0``.

    Subclasses implement the four primitive operations; derived
    operations (``sub``, ``is_unit``, powers, element orders) are
    provided here.
    """

    #: Number of elements in the ring (the ring's *order*).
    order: int
    #: Additive identity.
    zero: Element
    #: Multiplicative identity.
    one: Element

    @abstractmethod
    def elements(self) -> Sequence[Element]:
        """All ring elements in a fixed deterministic order."""

    @abstractmethod
    def add(self, a: Element, b: Element) -> Element:
        """Return ``a + b``."""

    @abstractmethod
    def neg(self, a: Element) -> Element:
        """Return ``-a``."""

    @abstractmethod
    def mul(self, a: Element, b: Element) -> Element:
        """Return ``a * b``."""

    @abstractmethod
    def inverse(self, a: Element) -> Element:
        """Return ``a^-1``.

        Raises:
            NotInvertible: if ``a`` is not a unit of the ring.
        """

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------

    def sub(self, a: Element, b: Element) -> Element:
        """Return ``a - b``."""
        return self.add(a, self.neg(b))

    def is_unit(self, a: Element) -> bool:
        """Return ``True`` if ``a`` has a multiplicative inverse."""
        try:
            self.inverse(a)
        except NotInvertible:
            return False
        return True

    def index(self, a: Element) -> int:
        """Dense index of element ``a`` in ``elements()`` order."""
        try:
            return self._index_map[a]
        except AttributeError:
            self._index_map: dict[Element, int] = {
                e: i for i, e in enumerate(self.elements())
            }
            return self._index_map[a]

    def element(self, i: int) -> Element:
        """Element with dense index ``i`` (inverse of :meth:`index`)."""
        return self.elements()[i]

    def nsmul(self, n: int, a: Element) -> Element:
        """Return ``n * a = a + a + ... + a`` (``n`` times), the paper's
        ``n ∗ a`` operation."""
        result = self.zero
        addend = a
        while n > 0:
            if n & 1:
                result = self.add(result, addend)
            addend = self.add(addend, addend)
            n >>= 1
        return result

    def pow(self, a: Element, n: int) -> Element:
        """Return ``a^n`` for ``n >= 0`` (``a^0 = 1``)."""
        result = self.one
        base = a
        while n > 0:
            if n & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            n >>= 1
        return result

    def additive_order(self, a: Element) -> int:
        """Smallest ``m >= 1`` with ``m * a == 0`` (the paper's element
        *order*).  Always divides the ring order (Algebra Fact 1)."""
        for m in divisors(self.order):
            if self.nsmul(m, a) == self.zero:
                return m
        raise AssertionError("element order must divide ring order")

    def multiplicative_order(self, a: Element) -> int:
        """Smallest ``m >= 1`` with ``a^m == 1``.

        Raises:
            NotInvertible: if ``a`` is not a unit (no such ``m`` exists).
        """
        if not self.is_unit(a):
            raise NotInvertible(f"{a!r} is not a unit")
        m = 1
        x = a
        while x != self.one:
            x = self.mul(x, a)
            m += 1
        return m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"


class Zmod(Ring):
    """The ring of integers modulo ``n``, elements ``0..n-1``."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"Zmod order must be >= 2, got {n}")
        self.order = n
        self.zero = 0
        self.one = 1
        self._elements = tuple(range(n))

    def elements(self) -> Sequence[int]:
        return self._elements

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.order

    def neg(self, a: int) -> int:
        return (-a) % self.order

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.order

    def inverse(self, a: int) -> int:
        try:
            return pow(a, -1, self.order)
        except ValueError:
            raise NotInvertible(f"{a} is not a unit mod {self.order}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Zmod({self.order})"


class CrossProductRing(Ring):
    """Component-wise cross product ``R_1 x ... x R_n`` (Lemma 3).

    Elements are tuples; an element is a unit iff every component is a
    unit in its ring, so a cross product of two or more fields is a ring
    but not a field.
    """

    def __init__(self, rings: Iterable[Ring]):
        self.rings: tuple[Ring, ...] = tuple(rings)
        if not self.rings:
            raise ValueError("cross product of zero rings is not defined")
        self.order = 1
        for r in self.rings:
            self.order *= r.order
        self.zero = tuple(r.zero for r in self.rings)
        self.one = tuple(r.one for r in self.rings)
        self._elements: tuple[tuple[Any, ...], ...] | None = None

    def elements(self) -> Sequence[tuple[Any, ...]]:
        if self._elements is None:
            self._elements = tuple(
                itertools.product(*(r.elements() for r in self.rings))
            )
        return self._elements

    def add(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.add(x, y) for r, x, y in zip(self.rings, a, b))

    def neg(self, a: tuple) -> tuple:
        return tuple(r.neg(x) for r, x in zip(self.rings, a))

    def mul(self, a: tuple, b: tuple) -> tuple:
        return tuple(r.mul(x, y) for r, x, y in zip(self.rings, a, b))

    def inverse(self, a: tuple) -> tuple:
        return tuple(r.inverse(x) for r, x in zip(self.rings, a))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " x ".join(repr(r) for r in self.rings)
        return f"CrossProductRing({inner})"
