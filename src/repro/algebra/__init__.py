"""Algebraic substrate: integers, polynomials, rings, and finite fields.

These are the raw materials of the paper's Section 2 constructions.
Everything downstream (designs, layouts) consumes the :class:`Ring`
interface and the :func:`ring_with_generators` factory.
"""

from .factor import (
    divisors,
    is_prime,
    is_prime_power,
    largest_prime_power_leq,
    min_prime_power_factor,
    prime_factorization,
    prime_power_decomposition,
    prime_powers_upto,
    primes_upto,
)
from .fields import GF, ExtensionField, FiniteField, PrimeField
from .generators import (
    generator_capacity,
    is_generator_set,
    max_generator_set_size,
    ring_with_generators,
)
from .rings import CrossProductRing, Element, NotInvertible, Ring, Zmod

__all__ = [
    "divisors",
    "is_prime",
    "is_prime_power",
    "largest_prime_power_leq",
    "min_prime_power_factor",
    "prime_factorization",
    "prime_power_decomposition",
    "prime_powers_upto",
    "primes_upto",
    "GF",
    "ExtensionField",
    "FiniteField",
    "PrimeField",
    "generator_capacity",
    "is_generator_set",
    "max_generator_set_size",
    "ring_with_generators",
    "CrossProductRing",
    "Element",
    "NotInvertible",
    "Ring",
    "Zmod",
]
