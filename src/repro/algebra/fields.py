"""Finite fields GF(p) and GF(p^m).

The paper's most useful designs (Theorems 4, 5, 6) take the ring to be a
finite field, where *any* ``k`` distinct elements form a generator set.
This module provides:

* :class:`PrimeField` — GF(p) as integers mod p;
* :class:`ExtensionField` — GF(p^m) as polynomials over GF(p) modulo a
  deterministic irreducible polynomial, with discrete-log tables for
  O(1) multiplication and inversion;
* :func:`GF` — factory returning the field of a given prime-power order;
* subfield extraction (Theorem 6 needs the unique subfield of order
  ``k`` inside GF(k^m)) and primitive elements / element orders
  (Theorems 4 and 5 need elements of prescribed multiplicative order).
"""

from __future__ import annotations

from typing import Sequence

from .factor import prime_factorization, prime_power_decomposition
from .poly import (
    Poly,
    find_irreducible,
    poly_add,
    poly_from_int,
    poly_mod,
    poly_mul,
    poly_neg,
    poly_to_int,
)
from .rings import Element, NotInvertible, Ring

__all__ = ["FiniteField", "PrimeField", "ExtensionField", "GF"]


class FiniteField(Ring):
    """Common interface for GF(p) and GF(p^m).

    Attributes:
        p: field characteristic (a prime).
        m: extension degree; the field order is ``p^m``.
    """

    p: int
    m: int

    def primitive_element(self) -> Element:
        """A generator of the cyclic multiplicative group (order ``q-1``)."""
        raise NotImplementedError

    def element_of_order(self, d: int) -> Element:
        """Return an element of multiplicative order exactly ``d``.

        Theorems 4 and 5 need elements of order ``gcd(v-1, k-1)`` and
        ``gcd(v-1, k)`` respectively.

        Raises:
            ValueError: if ``d`` does not divide ``q - 1``.
        """
        q1 = self.order - 1
        if d < 1 or q1 % d != 0:
            raise ValueError(
                f"no element of order {d} in GF({self.order}): {d} does not divide {q1}"
            )
        return self.pow(self.primitive_element(), q1 // d)

    def subfield_elements(self, suborder: int) -> list[Element]:
        """Elements of the unique subfield of the given order.

        GF(p^m) contains GF(p^d) exactly when ``d | m``; its elements are
        the roots of ``x^(p^d) = x``.

        Raises:
            ValueError: if no subfield of that order exists.
        """
        sp, sd = prime_power_decomposition(suborder)
        if sp != self.p or self.m % sd != 0:
            raise ValueError(
                f"GF({self.order}) has no subfield of order {suborder}"
            )
        return [a for a in self.elements() if self.pow(a, suborder) == a]


def _find_primitive(field: FiniteField) -> Element:
    """Find a multiplicative generator by checking ``g^((q-1)/r) != 1``
    for every prime ``r`` dividing ``q - 1``."""
    q1 = field.order - 1
    prime_divs = [r for r, _ in prime_factorization(q1)] if q1 > 1 else []
    for g in field.elements():
        if g == field.zero:
            continue
        if all(field.pow(g, q1 // r) != field.one for r in prime_divs):
            return g
    raise AssertionError("finite field must have a primitive element")


class PrimeField(FiniteField):
    """GF(p): the integers modulo a prime ``p``."""

    def __init__(self, p: int):
        facs = prime_factorization(p)
        if len(facs) != 1 or facs[0][1] != 1:
            raise ValueError(f"PrimeField order must be prime, got {p}")
        self.p = p
        self.m = 1
        self.order = p
        self.zero = 0
        self.one = 1
        self._elements = tuple(range(p))
        self._primitive: int | None = None

    def elements(self) -> Sequence[int]:
        return self._elements

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inverse(self, a: int) -> int:
        if a % self.p == 0:
            raise NotInvertible("0 is not invertible")
        return pow(a, self.p - 2, self.p)

    def primitive_element(self) -> int:
        if self._primitive is None:
            self._primitive = _find_primitive(self)
        return self._primitive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF({self.p})"


class ExtensionField(FiniteField):
    """GF(p^m) for ``m >= 2``, built as GF(p)[x] / (f) for the
    deterministic irreducible ``f`` from :func:`find_irreducible`.

    Elements are integers in ``[0, p^m)`` encoding polynomial
    coefficients base-``p`` (digit ``i`` = coefficient of ``x^i``), so
    element 0 is the zero, element 1 the unit, and elements ``< p`` form
    the prime subfield.  Multiplication and inversion use discrete
    log/antilog tables built once at construction (O(q) space).
    """

    def __init__(self, p: int, m: int, modulus: Poly | None = None):
        if m < 2:
            raise ValueError("use PrimeField for degree-1 fields")
        facs = prime_factorization(p)
        if len(facs) != 1 or facs[0][1] != 1:
            raise ValueError(f"characteristic must be prime, got {p}")
        self.p = p
        self.m = m
        self.order = p**m
        self.modulus: Poly = modulus if modulus is not None else find_irreducible(p, m)
        if len(self.modulus) - 1 != m:
            raise ValueError(
                f"modulus degree {len(self.modulus) - 1} does not match m={m}"
            )
        self.zero = 0
        self.one = 1
        self._elements = tuple(range(self.order))
        self._build_log_tables()

    def _build_log_tables(self) -> None:
        """Find a primitive element and tabulate ``exp``/``log``.

        ``_exp[i] = g^i`` for ``i in [0, q-1)`` and ``_log[a] = i`` with
        ``g^i = a`` for nonzero ``a``; this makes ``mul`` and ``inverse``
        O(1) (a hot path when generating v(v-1) design blocks).
        """
        p, q = self.p, self.order
        # Search candidates by stepping through powers until a full cycle
        # of length q-1 is observed (that candidate is primitive).
        for cand in range(1, q):
            g = poly_from_int(cand, p)
            exp: list[int] = [1]
            cur: Poly = (1,)
            for _ in range(q - 2):
                cur = poly_mod(poly_mul(cur, g, p), self.modulus, p)
                code = poly_to_int(cur, p)
                if code == 1:
                    break
                exp.append(code)
            if len(exp) == q - 1:
                self._exp = exp
                self._log = [0] * q  # _log[0] unused
                for i, code in enumerate(exp):
                    self._log[code] = i
                self._primitive = cand
                return
        raise AssertionError("finite field must have a primitive element")

    def elements(self) -> Sequence[int]:
        return self._elements

    def add(self, a: int, b: int) -> int:
        p = self.p
        if p == 2:
            return a ^ b
        out = 0
        mult = 1
        while a or b:
            a, da = divmod(a, p)
            b, db = divmod(b, p)
            out += ((da + db) % p) * mult
            mult *= p
        return out

    def neg(self, a: int) -> int:
        p = self.p
        if p == 2:
            return a
        out = 0
        mult = 1
        while a:
            a, d = divmod(a, p)
            out += ((-d) % p) * mult
            mult *= p
        return out

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self._exp[(self._log[a] + self._log[b]) % (self.order - 1)]

    def inverse(self, a: int) -> int:
        if a == 0:
            raise NotInvertible("0 is not invertible")
        return self._exp[(-self._log[a]) % (self.order - 1)]

    def primitive_element(self) -> int:
        return self._primitive

    def multiplicative_order(self, a: int) -> int:
        """O(log) order via discrete logs: ord(g^j) = (q-1)/gcd(j, q-1)."""
        if a == 0:
            raise NotInvertible("0 is not a unit")
        import math

        j = self._log[a]
        q1 = self.order - 1
        return q1 // math.gcd(j, q1) if j else 1

    def to_poly(self, a: int) -> Poly:
        """Decode an element into its coefficient tuple."""
        return poly_from_int(a, self.p)

    def from_poly(self, f: Poly) -> int:
        """Encode a coefficient tuple (reduced mod the modulus) as an element."""
        return poly_to_int(poly_mod(f, self.modulus, self.p), self.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF({self.p}^{self.m})"


def GF(q: int) -> FiniteField:
    """Return the finite field of prime-power order ``q``.

    Raises:
        ValueError: if ``q`` is not a prime power.
    """
    p, m = prime_power_decomposition(q)
    return PrimeField(p) if m == 1 else ExtensionField(p, m)
