"""Dense univariate polynomial arithmetic over the prime field GF(p).

This is the substrate for building the extension fields GF(p^m) used by
the ring-based block design constructions (Section 2 of the paper).
Polynomials are represented as tuples of integer coefficients in
``[0, p)``, little-endian (``poly[i]`` is the coefficient of ``x^i``),
with no trailing zeros; the zero polynomial is the empty tuple ``()``.

The tuple representation keeps polynomials hashable so field elements
can key dictionaries, and deterministic so constructions are
reproducible run-to-run.
"""

from __future__ import annotations

from .factor import prime_factorization

Poly = tuple[int, ...]

__all__ = [
    "Poly",
    "poly_trim",
    "poly_add",
    "poly_neg",
    "poly_sub",
    "poly_mul",
    "poly_divmod",
    "poly_mod",
    "poly_gcd",
    "poly_powmod",
    "is_irreducible",
    "find_irreducible",
    "poly_from_int",
    "poly_to_int",
]


def poly_trim(coeffs: list[int]) -> Poly:
    """Strip trailing zero coefficients and return an immutable tuple."""
    i = len(coeffs)
    while i > 0 and coeffs[i - 1] == 0:
        i -= 1
    return tuple(coeffs[:i])


def poly_add(a: Poly, b: Poly, p: int) -> Poly:
    """Return ``a + b`` over GF(p)."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return poly_trim(out)


def poly_neg(a: Poly, p: int) -> Poly:
    """Return ``-a`` over GF(p)."""
    return tuple((-c) % p for c in a)


def poly_sub(a: Poly, b: Poly, p: int) -> Poly:
    """Return ``a - b`` over GF(p)."""
    return poly_add(a, poly_neg(b, p), p)


def poly_mul(a: Poly, b: Poly, p: int) -> Poly:
    """Return ``a * b`` over GF(p) (schoolbook; degrees here are tiny)."""
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] = (out[i + j] + ca * cb) % p
    return poly_trim(out)


def poly_divmod(a: Poly, b: Poly, p: int) -> tuple[Poly, Poly]:
    """Return ``(quotient, remainder)`` of ``a / b`` over GF(p).

    Raises:
        ZeroDivisionError: if ``b`` is the zero polynomial.
    """
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    rem = list(a)
    deg_b = len(b) - 1
    lead_inv = pow(b[-1], p - 2, p) if p > 2 else b[-1]
    quot = [0] * max(0, len(a) - deg_b)
    for i in range(len(a) - 1, deg_b - 1, -1):
        c = rem[i]
        if c == 0:
            continue
        factor = (c * lead_inv) % p
        quot[i - deg_b] = factor
        for j, cb in enumerate(b):
            rem[i - deg_b + j] = (rem[i - deg_b + j] - factor * cb) % p
    return poly_trim(quot), poly_trim(rem)


def poly_mod(a: Poly, b: Poly, p: int) -> Poly:
    """Return ``a mod b`` over GF(p)."""
    return poly_divmod(a, b, p)[1]


def poly_gcd(a: Poly, b: Poly, p: int) -> Poly:
    """Return the monic greatest common divisor of ``a`` and ``b`` over GF(p)."""
    while b:
        a, b = b, poly_mod(a, b, p)
    if a:
        inv = pow(a[-1], p - 2, p) if p > 2 else a[-1]
        a = tuple((c * inv) % p for c in a)
    return a


def poly_powmod(base: Poly, exp: int, mod: Poly, p: int) -> Poly:
    """Return ``base^exp mod mod`` over GF(p) by square-and-multiply."""
    result: Poly = (1,)
    base = poly_mod(base, mod, p)
    while exp > 0:
        if exp & 1:
            result = poly_mod(poly_mul(result, base, p), mod, p)
        base = poly_mod(poly_mul(base, base, p), mod, p)
        exp >>= 1
    return result


def is_irreducible(f: Poly, p: int) -> bool:
    """Rabin irreducibility test for ``f`` over GF(p).

    ``f`` of degree ``n`` is irreducible iff ``x^(p^n) == x (mod f)`` and
    ``gcd(x^(p^(n/q)) - x, f) == 1`` for every prime ``q`` dividing ``n``.
    """
    n = len(f) - 1
    if n < 1:
        return False
    if n == 1:
        return True
    x: Poly = (0, 1)
    for q, _ in prime_factorization(n):
        h = poly_sub(poly_powmod(x, p ** (n // q), f, p), x, p)
        if len(poly_gcd(h, f, p)) != 1:  # gcd is not a nonzero constant
            return False
    return poly_powmod(x, p**n, f, p) == x


def poly_from_int(code: int, p: int) -> Poly:
    """Decode a base-``p`` integer encoding into a polynomial.

    Digit ``i`` of ``code`` in base ``p`` is the coefficient of ``x^i``.
    """
    coeffs: list[int] = []
    while code:
        code, digit = divmod(code, p)
        coeffs.append(digit)
    return tuple(coeffs)


def poly_to_int(f: Poly, p: int) -> int:
    """Encode a polynomial as a base-``p`` integer (inverse of
    :func:`poly_from_int`)."""
    code = 0
    for c in reversed(f):
        code = code * p + c
    return code


def find_irreducible(p: int, m: int) -> Poly:
    """Return the lexicographically-first monic irreducible polynomial of
    degree ``m`` over GF(p).

    The deterministic choice makes every field — and therefore every
    block design and layout built on top — reproducible across runs.

    Raises:
        ValueError: if ``m < 1``.
    """
    if m < 1:
        raise ValueError(f"degree must be >= 1, got {m}")
    if m == 1:
        return (0, 1)  # x itself
    # Enumerate monic degree-m polynomials by their low-order coefficients.
    for code in range(p**m):
        coeffs = list(poly_from_int(code, p))
        coeffs += [0] * (m - len(coeffs))
        coeffs.append(1)  # monic leading coefficient
        cand = tuple(coeffs)
        if is_irreducible(cand, p):
            return cand
    raise AssertionError(f"no irreducible polynomial of degree {m} over GF({p})")
