"""Generator sets for ring-based block designs (Theorem 2 / Lemma 3).

A *generator set* of a ring ``R`` is a set ``{g_0, ..., g_{k-1}}`` whose
pairwise differences are units.  Theorem 2 shows the largest such set in
any ring of order ``v`` has size ``M(v)``, the minimum prime-power
factor of ``v``, and Lemma 3 realizes that bound with a cross product of
finite fields.  This module implements both directions:

* :func:`ring_with_generators` — the Lemma 3 construction for any
  ``(v, k)`` with ``k <= M(v)``;
* :func:`max_generator_set_size` — exhaustive search used by the test
  suite to confirm the Theorem 2 upper bound on small rings.
"""

from __future__ import annotations

import itertools

from .factor import min_prime_power_factor, prime_factorization
from .fields import GF
from .rings import CrossProductRing, Element, Ring

__all__ = [
    "generator_capacity",
    "is_generator_set",
    "ring_with_generators",
    "max_generator_set_size",
]


def generator_capacity(v: int) -> int:
    """``M(v)``: the largest achievable generator-set size for order ``v``
    (Theorem 2)."""
    return min_prime_power_factor(v)


def is_generator_set(ring: Ring, gens: list[Element]) -> bool:
    """Check that all pairwise differences of ``gens`` are units.

    Also rejects repeated elements (a repeated generator has difference
    zero, which is never a unit).
    """
    for a, b in itertools.combinations(gens, 2):
        if not ring.is_unit(ring.sub(a, b)):
            return False
    return len(set(gens)) == len(gens)


def ring_with_generators(v: int, k: int) -> tuple[Ring, list[Element]]:
    """Build a ring of order ``v`` with a generator set of size ``k``.

    For prime-power ``v`` the ring is the field GF(v) and the generators
    are the first ``k`` field elements (``g_0 = 0``, matching the
    conventions of Theorems 4-6).  For composite ``v`` the ring is the
    Lemma 3 cross product of the fields ``GF(p_i^{e_i})`` and generator
    ``j`` takes the ``j``-th element in every component.

    Raises:
        ValueError: if ``k > M(v)`` (impossible by Theorem 2) or ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"need at least one generator, got k={k}")
    cap = generator_capacity(v)
    if k > cap:
        raise ValueError(
            f"no ring of order {v} has {k} generators: Theorem 2 caps it at M({v})={cap}"
        )
    facs = prime_factorization(v)
    if len(facs) == 1:
        field = GF(v)
        elems = field.elements()
        return field, [elems[j] for j in range(k)]
    components = [GF(p**e) for p, e in facs]
    ring = CrossProductRing(components)
    gens = [tuple(f.elements()[j] for f in components) for j in range(k)]
    return ring, gens


def max_generator_set_size(ring: Ring) -> int:
    """Exhaustively find the largest generator set in ``ring``.

    This is a maximum-clique search on the graph whose vertices are ring
    elements and whose edges join pairs with invertible difference.
    Exponential in general — intended only for the small rings used to
    verify Theorem 2 in tests.  A generator set is translation-invariant
    (adding a constant to all generators preserves differences), so the
    search fixes ``0`` as a member.
    """
    elems = list(ring.elements())
    unit_diff = {
        (a, b)
        for a, b in itertools.permutations(elems, 2)
        if ring.is_unit(ring.sub(a, b))
    }
    candidates = [e for e in elems if e != ring.zero and (e, ring.zero) in unit_diff]

    best = 1  # {0} alone is always a generator set

    def extend(chosen: list[Element], pool: list[Element]) -> None:
        nonlocal best
        best = max(best, len(chosen))
        if len(chosen) + len(pool) <= best:
            return  # cannot beat the incumbent
        for i, cand in enumerate(pool):
            new_pool = [e for e in pool[i + 1 :] if (e, cand) in unit_diff]
            extend(chosen + [cand], new_pool)

    extend([ring.zero], candidates)
    return best
