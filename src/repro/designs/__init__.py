"""Block designs: Theorem 1 ring designs, reductions, bounds, catalog."""

from .bibd import BlockDesign, DesignError
from .bounds import (
    admissible_parameters,
    bibd_lower_bound_b,
    fisher_inequality_holds,
    meets_lower_bound,
)
from .catalog import (
    best_design,
    candidate_constructions,
    difference_set_design,
    fano_plane,
)
from .complement import complement_design, complement_parameters
from .complete import complete_design, complete_design_b
from .reductions import (
    affine_orbits,
    multiplicative_orbits,
    theorem4_design,
    theorem4_parameters,
    theorem5_design,
    theorem5_parameters,
)
from .ring_design import RingDesign, ring_design, theorem1_parameters
from .subfield_design import (
    is_theorem6_applicable,
    theorem6_design,
    theorem6_parameters,
)

__all__ = [
    "BlockDesign",
    "DesignError",
    "admissible_parameters",
    "bibd_lower_bound_b",
    "fisher_inequality_holds",
    "meets_lower_bound",
    "best_design",
    "candidate_constructions",
    "difference_set_design",
    "fano_plane",
    "complement_design",
    "complement_parameters",
    "complete_design",
    "complete_design_b",
    "affine_orbits",
    "multiplicative_orbits",
    "theorem4_design",
    "theorem4_parameters",
    "theorem5_design",
    "theorem5_parameters",
    "RingDesign",
    "ring_design",
    "theorem1_parameters",
    "is_theorem6_applicable",
    "theorem6_design",
    "theorem6_parameters",
]
