"""Complete block designs: all ``C(v, k)`` k-subsets of the ground set.

The complete design is the trivially-always-available BIBD the paper
uses as its baseline: it satisfies every balance condition but its size
``b = C(v, k)`` explodes with ``v``, which is exactly why it fails the
Condition 4 feasibility bound for large arrays and why the paper's
smaller constructions matter.
"""

from __future__ import annotations

import itertools
import math

from .bibd import BlockDesign

__all__ = ["complete_design", "complete_design_b"]


def complete_design_b(v: int, k: int) -> int:
    """Number of blocks ``C(v, k)`` of the complete design (no
    materialization)."""
    return math.comb(v, k)


def complete_design(v: int, k: int) -> BlockDesign:
    """Materialize the complete design for ``(v, k)``.

    Parameters are ``b = C(v,k)``, ``r = C(v-1,k-1)``,
    ``λ = C(v-2,k-2)``.

    Raises:
        ValueError: if ``k`` is out of range or the design would exceed
            one million blocks (guards accidental explosion; the paper's
            whole point is that complete designs are infeasible at scale).
    """
    if not 2 <= k <= v:
        raise ValueError(f"need 2 <= k <= v, got v={v}, k={k}")
    b = complete_design_b(v, k)
    if b > 1_000_000:
        raise ValueError(
            f"complete design for v={v}, k={k} has {b} blocks; "
            "refusing to materialize (use the size formula instead)"
        )
    blocks = tuple(itertools.combinations(range(v), k))
    return BlockDesign(v=v, k=k, blocks=blocks, name=f"complete(v={v},k={k})")
