"""Subfield designs (Theorem 6): optimally small BIBDs with λ = 1.

When ``k`` is a prime power and ``v = k^m``, take the ring to be
GF(v) and the generators to be the unique subfield ``G`` of order ``k``.
The equivalence relation ``(x,y) ≡ (x + g_i y, g_j y)`` partitions the
``v(v-1)`` pair indices into classes of size exactly ``k(k-1)``, all
indexing the same block, so the redundancy factor is ``k(k-1)`` and the
reduced design has::

    b = v(v-1) / (k(k-1)),   r = (v-1)/(k-1),   λ = 1

which meets the Theorem 7 lower bound — these designs are optimally
small.  (Geometrically: the blocks are the lines of the affine geometry
AG(m, k) seen through the field structure.)
"""

from __future__ import annotations

from ..algebra import GF, prime_power_decomposition
from .bibd import BlockDesign, DesignError
from .ring_design import ring_design

__all__ = ["theorem6_design", "theorem6_parameters", "is_theorem6_applicable"]


def is_theorem6_applicable(v: int, k: int) -> bool:
    """``True`` iff ``k`` is a prime power and ``v`` is a power of ``k``."""
    try:
        prime_power_decomposition(k)
    except ValueError:
        return False
    if v <= k:
        return False
    n = v
    while n % k == 0:
        n //= k
    return n == 1


def theorem6_parameters(v: int, k: int) -> dict[str, int]:
    """Predicted ``(b, r, λ)`` of the Theorem 6 design."""
    return {
        "v": v,
        "k": k,
        "b": v * (v - 1) // (k * (k - 1)),
        "r": (v - 1) // (k - 1),
        "lambda": 1,
    }


def theorem6_design(v: int, k: int) -> BlockDesign:
    """Construct the optimally-small Theorem 6 BIBD.

    Raises:
        ValueError: if ``(v, k)`` is not of the form ``v = k^m`` with
            ``k`` a prime power and ``m >= 2``.
        DesignError: if the observed redundancy deviates from
            ``k(k-1)`` (would indicate an implementation bug).
    """
    if not is_theorem6_applicable(v, k):
        raise ValueError(
            f"Theorem 6 needs v = k^m with k a prime power and m >= 2; "
            f"got v={v}, k={k}"
        )
    field = GF(v)
    gens = field.subfield_elements(k)
    # Convention: g_0 = 0, g_1 = 1 (used by the equivalence-class proof
    # and by the layout layer's parity rules).
    gens.sort(key=lambda e: (0 if e == field.zero else (1 if e == field.one else 2)))

    raw = ring_design(v, k, ring=field, gens=gens).to_block_design()
    reduced = raw.reduce_redundancy(k * (k - 1))
    expected = theorem6_parameters(v, k)
    if reduced.b != expected["b"]:
        raise DesignError(
            f"Theorem 6 redundancy mismatch: b={reduced.b}, expected {expected['b']}"
        )
    return BlockDesign(v=v, k=k, blocks=reduced.blocks, name=f"thm6(v={v},k={k})")
