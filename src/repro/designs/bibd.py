"""Balanced incomplete block designs (BIBDs).

A BIBD is a collection of ``b`` blocks (``k``-element subsets of a
``v``-element ground set) such that every element lies in exactly ``r``
blocks and every pair of distinct elements lies in exactly ``λ`` blocks.
Blocks may repeat (the collection is a multiset); the paper's
redundancy-removal results (Section 2.2) are precisely about dividing
out repeated blocks.

Ground-set elements are always the dense integers ``0..v-1`` here; the
algebra layer owns the mapping from ring elements to indices.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["DesignError", "BlockDesign"]


class DesignError(ValueError):
    """Raised when a block collection violates the BIBD conditions."""


@dataclass(frozen=True)
class BlockDesign:
    """A block design on ground set ``{0, .., v-1}``.

    Attributes:
        v: ground-set size (number of disks, once mapped to a layout).
        k: block size (parity stripe size).
        blocks: the block multiset; each block is a sorted tuple of ``k``
            distinct element indices.
        name: human-readable construction tag (e.g. ``"ring(v=9,k=3)"``).
    """

    v: int
    k: int
    blocks: tuple[tuple[int, ...], ...]
    name: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------

    @property
    def b(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    @property
    def r(self) -> int:
        """Replication count: blocks containing each element.

        Only meaningful for balanced designs; computed as ``b*k/v``
        (exact for any element-balanced collection).
        """
        return self.b * self.k // self.v

    @property
    def lambda_(self) -> int:
        """Pair count λ, from the identity ``λ(v-1) = r(k-1)``."""
        return self.r * (self.k - 1) // (self.v - 1)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def element_counts(self) -> list[int]:
        """Number of blocks containing each element, indexed by element."""
        counts = [0] * self.v
        for blk in self.blocks:
            for e in blk:
                counts[e] += 1
        return counts

    def pair_counts(self) -> dict[tuple[int, int], int]:
        """Number of blocks containing each unordered pair.

        Pairs absent from every block are included with count 0.
        """
        counts: dict[tuple[int, int], int] = {
            pair: 0 for pair in itertools.combinations(range(self.v), 2)
        }
        for blk in self.blocks:
            for pair in itertools.combinations(blk, 2):
                counts[pair] += 1
        return counts

    def verify(self) -> None:
        """Check the full BIBD conditions.

        Raises:
            DesignError: with a specific message on the first violation
                found (block shape, element balance, or pair balance).
        """
        if self.v < 2 or not 2 <= self.k <= self.v:
            raise DesignError(f"invalid parameters v={self.v}, k={self.k}")
        if not self.blocks:
            raise DesignError("design has no blocks")
        for blk in self.blocks:
            if len(blk) != self.k:
                raise DesignError(f"block {blk} has size {len(blk)}, expected {self.k}")
            if len(set(blk)) != self.k:
                raise DesignError(f"block {blk} has repeated elements")
            if tuple(sorted(blk)) != blk:
                raise DesignError(f"block {blk} is not sorted canonically")
            if not all(0 <= e < self.v for e in blk):
                raise DesignError(f"block {blk} has out-of-range elements (v={self.v})")
        ecounts = self.element_counts()
        if len(set(ecounts)) != 1:
            raise DesignError(
                f"element counts not constant: min={min(ecounts)}, max={max(ecounts)}"
            )
        pcounts = self.pair_counts()
        distinct = set(pcounts.values())
        if len(distinct) != 1:
            raise DesignError(
                f"pair counts not constant: min={min(distinct)}, max={max(distinct)}"
            )

    def is_bibd(self) -> bool:
        """``True`` iff :meth:`verify` passes."""
        try:
            self.verify()
        except DesignError:
            return False
        return True

    # ------------------------------------------------------------------
    # Redundancy (Section 2.2)
    # ------------------------------------------------------------------

    def multiplicities(self) -> Counter[tuple[int, ...]]:
        """Multiset counts of each distinct block."""
        return Counter(self.blocks)

    def redundancy_factor(self) -> int:
        """The gcd of all block multiplicities — the largest ``f`` by
        which the design can be uniformly thinned (Section 2.2)."""
        return math.gcd(*self.multiplicities().values())

    def reduce_redundancy(self, factor: int | None = None) -> "BlockDesign":
        """Divide every block's multiplicity by ``factor``.

        With ``factor=None`` the maximal factor
        (:meth:`redundancy_factor`) is used.  The result is a BIBD with
        ``b``, ``r`` and ``λ`` all divided by ``factor``.

        Raises:
            DesignError: if some multiplicity is not divisible by
                ``factor``.
        """
        mults = self.multiplicities()
        if factor is None:
            factor = math.gcd(*mults.values())
        if factor == 1:
            return self
        reduced: list[tuple[int, ...]] = []
        for blk in sorted(mults):
            count = mults[blk]
            if count % factor != 0:
                raise DesignError(
                    f"block {blk} has multiplicity {count}, not divisible by {factor}"
                )
            reduced.extend([blk] * (count // factor))
        return BlockDesign(
            v=self.v,
            k=self.k,
            blocks=tuple(reduced),
            name=f"{self.name}/f{factor}" if self.name else f"reduced(f={factor})",
        )

    def parameter_string(self) -> str:
        """Compact ``(v, k, b, r, λ)`` summary for reports."""
        return (
            f"v={self.v} k={self.k} b={self.b} r={self.r} lambda={self.lambda_}"
        )
