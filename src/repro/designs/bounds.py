"""Size bounds for BIBDs (Theorem 7 and classical necessary conditions).

Theorem 7: any BIBD on ``v`` elements with block size ``k`` has at least
``v(v-1) / gcd(v(v-1), k(k-1))`` blocks.  The Theorem 6 designs meet
this bound when ``v`` is a power of ``k``.
"""

from __future__ import annotations

import math

__all__ = [
    "bibd_lower_bound_b",
    "meets_lower_bound",
    "admissible_parameters",
    "fisher_inequality_holds",
]


def bibd_lower_bound_b(v: int, k: int) -> int:
    """Theorem 7: minimum possible number of blocks of any ``(v, k)`` BIBD."""
    return v * (v - 1) // math.gcd(v * (v - 1), k * (k - 1))


def meets_lower_bound(v: int, k: int, b: int) -> bool:
    """``True`` iff ``b`` equals the Theorem 7 minimum."""
    return b == bibd_lower_bound_b(v, k)


def admissible_parameters(v: int, k: int, b: int, r: int, lam: int) -> bool:
    """Classical counting identities every BIBD must satisfy:
    ``bk = vr`` and ``λ(v-1) = r(k-1)``."""
    return b * k == v * r and lam * (v - 1) == r * (k - 1)


def fisher_inequality_holds(v: int, b: int, k: int) -> bool:
    """Fisher's inequality ``b >= v`` for nontrivial designs
    (``2 <= k < v``); vacuously true otherwise."""
    if not 2 <= k < v:
        return True
    return b >= v
