"""Redundancy-reducing generator choices (Theorems 4 and 5).

A raw Theorem 1 design has ``b = v(v-1)`` blocks, but for symmetric
generator choices many pairs ``(x, y)`` index the *same* block.  When
``v`` is a prime power:

* Theorem 4 chooses the generators as ``{0}`` plus whole multiplicative
  orbits of an element ``a`` of order ``d = gcd(v-1, k-1)``, giving a
  factor-``d`` redundancy, hence ``b = v(v-1)/gcd(v-1, k-1)``.
* Theorem 5 chooses them as whole orbits of the affine map
  ``x -> z + a(x-z)`` with ``a`` of order ``d = gcd(v-1, k)``, giving
  ``b = v(v-1)/gcd(v-1, k)``.

Both materialize the full design and then call
:meth:`BlockDesign.reduce_redundancy`, so the claimed factor is
*checked*, not assumed: if the multiplicities were not divisible by
``d`` the reduction would raise.
"""

from __future__ import annotations

import math

from ..algebra import GF, Element, FiniteField, is_prime_power
from .bibd import BlockDesign, DesignError
from .ring_design import ring_design

__all__ = [
    "theorem4_design",
    "theorem4_parameters",
    "theorem5_design",
    "theorem5_parameters",
    "multiplicative_orbits",
    "affine_orbits",
]


def theorem4_parameters(v: int, k: int) -> dict[str, int]:
    """Predicted ``(b, r, λ)`` of the Theorem 4 design."""
    d = math.gcd(v - 1, k - 1)
    return {
        "v": v,
        "k": k,
        "b": v * (v - 1) // d,
        "r": k * (v - 1) // d,
        "lambda": k * (k - 1) // d,
    }


def theorem5_parameters(v: int, k: int) -> dict[str, int]:
    """Predicted ``(b, r, λ)`` of the Theorem 5 design.

    Note the paper's statement reads ``b = (v-1)/gcd(v-1,k)`` but the
    construction (and the redundancy argument, a factor ``gcd(v-1, k)``
    removed from ``v(v-1)`` blocks) gives ``b = v(v-1)/gcd(v-1, k)``;
    the missing ``v`` is a typesetting artifact of the journal scan.
    """
    d = math.gcd(v - 1, k)
    return {
        "v": v,
        "k": k,
        "b": v * (v - 1) // d,
        "r": k * (v - 1) // d,
        "lambda": k * (k - 1) // d,
    }


def multiplicative_orbits(field: FiniteField, a: Element) -> list[list[Element]]:
    """Orbits of the nonzero field elements under ``x -> a*x``.

    Every orbit has size ``ord(a)``; orbits are returned in
    first-element enumeration order for determinism.
    """
    seen: set[Element] = set()
    orbits: list[list[Element]] = []
    for w in field.elements():
        if w == field.zero or w in seen:
            continue
        orbit = [w]
        x = field.mul(a, w)
        while x != w:
            orbit.append(x)
            x = field.mul(a, x)
        seen.update(orbit)
        orbits.append(orbit)
    return orbits


def affine_orbits(
    field: FiniteField, a: Element, z: Element
) -> list[list[Element]]:
    """Orbits of ``x -> z + a(x - z)`` over all field elements.

    ``z`` is a fixed point; every other orbit has size ``ord(a)``.
    The fixed-point orbit ``[z]`` is included.
    """
    seen: set[Element] = set()
    orbits: list[list[Element]] = []
    for w in field.elements():
        if w in seen:
            continue
        orbit = [w]
        x = field.add(z, field.mul(a, field.sub(w, z)))
        while x != w:
            orbit.append(x)
            x = field.add(z, field.mul(a, field.sub(x, z)))
        seen.update(orbit)
        orbits.append(orbit)
    return orbits


def _require_prime_power(v: int, theorem: str) -> None:
    if not is_prime_power(v):
        raise ValueError(f"{theorem} requires prime-power v, got {v}")


def theorem4_design(v: int, k: int) -> BlockDesign:
    """Construct the Theorem 4 BIBD for prime-power ``v`` and any
    ``2 <= k <= v``.

    Generators: ``{0}`` union ``(k-1)/d`` multiplicative orbits of an
    element of order ``d = gcd(v-1, k-1)``.

    Raises:
        ValueError: if ``v`` is not a prime power or ``k`` out of range.
        DesignError: if the construction's redundancy deviates from the
            theorem (would indicate an implementation bug).
    """
    _require_prime_power(v, "Theorem 4")
    if not 2 <= k <= v:
        raise ValueError(f"need 2 <= k <= v, got v={v}, k={k}")
    field = GF(v)
    d = math.gcd(v - 1, k - 1)
    a = field.element_of_order(d)
    orbits = multiplicative_orbits(field, a)
    needed = (k - 1) // d
    gens: list[Element] = [field.zero]
    for orbit in orbits[:needed]:
        gens.extend(orbit)
    if len(gens) != k:
        raise AssertionError(
            f"generator assembly bug: got {len(gens)} generators, wanted {k}"
        )

    raw = ring_design(v, k, ring=field, gens=gens).to_block_design()
    reduced = raw.reduce_redundancy(d)
    expected = theorem4_parameters(v, k)
    if reduced.b != expected["b"]:
        raise DesignError(
            f"Theorem 4 redundancy mismatch: b={reduced.b}, expected {expected['b']}"
        )
    return BlockDesign(
        v=v, k=k, blocks=reduced.blocks, name=f"thm4(v={v},k={k})"
    )


def theorem5_design(v: int, k: int) -> BlockDesign:
    """Construct the Theorem 5 BIBD for prime-power ``v`` and
    ``2 <= k <= v-1``.

    Generators: ``k/d`` orbits of the affine map ``x -> z + a(x-z)``
    (``a`` of order ``d = gcd(v-1, k)``, ``z = 1``), including the orbit
    through 0 and excluding the fixed point ``z``.

    Raises:
        ValueError: if ``v`` is not a prime power or ``k`` out of range
            (``k = v`` is excluded: the generator set must avoid the
            fixed point ``z``).
        DesignError: if the redundancy deviates from the theorem.
    """
    _require_prime_power(v, "Theorem 5")
    if not 2 <= k <= v - 1:
        raise ValueError(f"need 2 <= k <= v-1, got v={v}, k={k}")
    field = GF(v)
    d = math.gcd(v - 1, k)
    a = field.element_of_order(d)
    z = field.one
    orbits = affine_orbits(field, a, z)
    # Exclude the fixed point z's orbit; when d = 1 every orbit is a
    # singleton (the reduction is trivially by factor 1) and the
    # remaining singletons are the valid picks.
    cycle_orbits = [o for o in orbits if z not in o]
    zero_orbit = next(o for o in cycle_orbits if field.zero in o)
    needed = k // d
    chosen = [zero_orbit]
    for orbit in cycle_orbits:
        if len(chosen) == needed:
            break
        if orbit is not zero_orbit:
            chosen.append(orbit)
    gens: list[Element] = []
    for orbit in chosen:
        gens.extend(orbit)
    # g_0 must be 0 for the downstream layout conventions.
    gens.sort(key=lambda e: 0 if e == field.zero else 1)
    if len(gens) != k:
        raise AssertionError(
            f"generator assembly bug: got {len(gens)} generators, wanted {k}"
        )

    raw = ring_design(v, k, ring=field, gens=gens).to_block_design()
    reduced = raw.reduce_redundancy(d)
    expected = theorem5_parameters(v, k)
    if reduced.b != expected["b"]:
        raise DesignError(
            f"Theorem 5 redundancy mismatch: b={reduced.b}, expected {expected['b']}"
        )
    return BlockDesign(
        v=v, k=k, blocks=reduced.blocks, name=f"thm5(v={v},k={k})"
    )
