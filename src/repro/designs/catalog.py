"""Design selection and a small catalog of classical BIBDs.

:func:`best_design` picks, for a requested ``(v, k)``, the smallest
design available from the paper's constructions — the decision procedure
an array controller would ship with.  The explicit difference-set
designs (Fano plane and friends) anchor the test suite with
independently-known ground truth.
"""

from __future__ import annotations

from ..algebra import is_prime_power, min_prime_power_factor
from .bibd import BlockDesign
from .complement import complement_design
from .complete import complete_design, complete_design_b
from .reductions import (
    theorem4_design,
    theorem4_parameters,
    theorem5_design,
    theorem5_parameters,
)
from .ring_design import ring_design
from .subfield_design import is_theorem6_applicable, theorem6_design, theorem6_parameters

__all__ = [
    "difference_set_design",
    "fano_plane",
    "best_design",
    "candidate_constructions",
]


def difference_set_design(v: int, base_block: tuple[int, ...]) -> BlockDesign:
    """Develop a (planar) difference set mod ``v`` into a BIBD.

    The blocks are ``{d + t mod v}`` for ``t = 0..v-1``.  If
    ``base_block`` is a perfect difference set, the result is a
    symmetric BIBD with ``λ = 1``.
    """
    k = len(base_block)
    blocks = tuple(
        tuple(sorted((d + t) % v for d in base_block)) for t in range(v)
    )
    return BlockDesign(v=v, k=k, blocks=blocks, name=f"diffset(v={v},k={k})")


def fano_plane() -> BlockDesign:
    """The (7, 3, 1) Fano plane from the difference set {0, 1, 3} mod 7."""
    return difference_set_design(7, (0, 1, 3))


def _direct_candidates(v: int, k: int) -> list[tuple[str, int]]:
    """Non-complement constructions applicable to ``(v, k)``."""
    candidates: list[tuple[str, int]] = []
    if is_theorem6_applicable(v, k):
        candidates.append(("thm6", theorem6_parameters(v, k)["b"]))
    if is_prime_power(v) and 2 <= k <= v:
        candidates.append(("thm4", theorem4_parameters(v, k)["b"]))
        if k <= v - 1:
            candidates.append(("thm5", theorem5_parameters(v, k)["b"]))
    if 2 <= k <= min_prime_power_factor(v):
        candidates.append(("ring", v * (v - 1)))
    if 2 <= k <= v:
        candidates.append(("complete", complete_design_b(v, k)))
    return candidates


def candidate_constructions(v: int, k: int) -> list[tuple[str, int]]:
    """Constructions applicable to ``(v, k)`` with their predicted block
    counts, cheapest first.  Nothing is materialized.

    For ``k > v/2`` the complement of the best ``(v, v-k)`` design is
    also considered (same block count; see
    :mod:`repro.designs.complement`).
    """
    candidates = _direct_candidates(v, k)
    if k > v - k >= 2:
        mirrored = _direct_candidates(v, v - k)
        if mirrored:
            best_name, best_b = min(mirrored, key=lambda c: c[1])
            candidates.append((f"complement:{best_name}", best_b))
    candidates.sort(key=lambda c: c[1])
    return candidates


_BUILDERS = {
    "thm6": theorem6_design,
    "thm4": theorem4_design,
    "thm5": theorem5_design,
    "ring": lambda v, k: ring_design(v, k).to_block_design(),
    "complete": complete_design,
}


def _build_candidate(name: str, v: int, k: int) -> BlockDesign:
    if name.startswith("complement:"):
        inner = name.split(":", 1)[1]
        base = _BUILDERS[inner](v, v - k).reduce_redundancy()
        return complement_design(base)
    return _BUILDERS[name](v, k)


def best_design(
    v: int, k: int, *, max_blocks: int | None = None
) -> BlockDesign:
    """Build the smallest available BIBD for ``(v, k)``.

    Tries the applicable constructions in increasing predicted size and
    materializes the first one whose block count fits ``max_blocks``
    (when given).  The generic redundancy reduction is applied to the
    winner, so e.g. a plain ring design for ``k = 2`` still sheds its
    symmetric duplicates.

    Raises:
        ValueError: if no construction applies (e.g. ``k > v``) or none
            fits within ``max_blocks``.
    """
    candidates = candidate_constructions(v, k)
    if not candidates:
        raise ValueError(f"no BIBD construction available for v={v}, k={k}")
    for name, predicted_b in candidates:
        if max_blocks is not None and predicted_b > max_blocks:
            continue
        if name == "complete" and predicted_b > 1_000_000:
            continue
        design = _build_candidate(name, v, k)
        reduced = design.reduce_redundancy()
        if reduced.b != design.b:
            reduced = BlockDesign(
                v=v, k=k, blocks=reduced.blocks, name=design.name + "+gcd"
            )
        return reduced
    raise ValueError(
        f"no construction for v={v}, k={k} fits within max_blocks={max_blocks}; "
        f"smallest available is {candidates[0][0]} with b={candidates[0][1]}"
    )
