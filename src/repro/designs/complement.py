"""Complement designs: a classical coverage booster for large ``k``.

The complement of a BIBD — replace each block by the elements *not* in
it — is again a BIBD, with parameters::

    v' = v,  k' = v - k,  b' = b,  r' = b - r,  λ' = b - 2r + λ

This matters for layout feasibility at large stripe sizes: the paper's
field constructions are strongest for ``k`` well below ``v``, and the
complement of a small-``k`` design covers the mirrored large-``k``
regime at identical block count.  (Complementing is folklore — Wallis
[16] — but it composes with every construction in this package, so the
catalog uses it as a fallback.)
"""

from __future__ import annotations

from .bibd import BlockDesign

__all__ = ["complement_design", "complement_parameters"]


def complement_parameters(v: int, k: int, b: int, r: int, lam: int) -> dict[str, int]:
    """Parameters of the complement of a ``(v, k, b, r, λ)`` BIBD."""
    return {
        "v": v,
        "k": v - k,
        "b": b,
        "r": b - r,
        "lambda": b - 2 * r + lam,
    }


def complement_design(design: BlockDesign) -> BlockDesign:
    """The complement of ``design``.

    Raises:
        ValueError: if ``k >= v - 1`` (the complement would have blocks
            of size < 2, useless as parity stripes).
    """
    v, k = design.v, design.k
    if v - k < 2:
        raise ValueError(
            f"complement of a (v={v}, k={k}) design has block size {v - k} < 2"
        )
    ground = frozenset(range(v))
    blocks = tuple(
        tuple(sorted(ground - set(blk))) for blk in design.blocks
    )
    return BlockDesign(
        v=v,
        k=v - k,
        blocks=blocks,
        name=f"complement({design.name or 'bibd'})",
    )
