"""Ring-based block designs (Theorem 1).

Given a finite commutative ring with unit ``R`` and generators
``g_0..g_{k-1}`` (pairwise differences invertible), the block indexed by
a pair ``(x, y)`` with ``y != 0`` is ``{x + y(g_i - g_0)}``.  Theorem 1
proves the collection over all ``v(v-1)`` pairs is a BIBD with
``b = v(v-1)``, ``r = k(v-1)``, ``λ = k(k-1)``.

The pair indexing is not incidental bookkeeping: Section 3's layouts
place the parity unit of stripe ``(x, y)`` on disk ``x``, and Theorem 8
reassigns it to disk ``x + y(g_1 - g_0)`` after a disk removal.  So
:class:`RingDesign` retains, for every block, its ``(x, y)`` pair and
its elements *in generator order*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..algebra import Element, Ring, is_generator_set, ring_with_generators
from .bibd import BlockDesign

__all__ = ["RingDesign", "ring_design", "theorem1_parameters"]


def theorem1_parameters(v: int, k: int) -> dict[str, int]:
    """The exact Theorem 1 parameters for order ``v`` and ``k`` generators."""
    return {
        "v": v,
        "k": k,
        "b": v * (v - 1),
        "r": k * (v - 1),
        "lambda": k * (k - 1),
    }


@dataclass(frozen=True)
class RingDesign:
    """A Theorem 1 design with its full ``(x, y)``-pair structure.

    Attributes:
        ring: the underlying commutative ring with unit.
        gens: the generator list ``[g_0, ..., g_{k-1}]``.
        pairs: the ``v(v-1)`` block indices ``(x, y)``, ``y != 0``, in
            deterministic (x-major) order.
        block_elements: for each pair, the block's elements in generator
            order (``block_elements[i][j] = x + y(g_j - g_0)``).
    """

    ring: Ring
    gens: tuple[Element, ...]
    pairs: tuple[tuple[Element, Element], ...]
    block_elements: tuple[tuple[Element, ...], ...] = field(repr=False)

    @property
    def v(self) -> int:
        """Ground-set size (ring order)."""
        return self.ring.order

    @property
    def k(self) -> int:
        """Block size (number of generators)."""
        return len(self.gens)

    @property
    def b(self) -> int:
        """Number of blocks, ``v(v-1)``."""
        return len(self.pairs)

    def to_block_design(self) -> BlockDesign:
        """Forget the pair structure: sorted index blocks for the verifier
        and for constructions that only need the multiset of blocks."""
        index = self.ring.index
        blocks = tuple(
            tuple(sorted(index(e) for e in elems)) for elems in self.block_elements
        )
        return BlockDesign(
            v=self.v,
            k=self.k,
            blocks=blocks,
            name=f"ring(v={self.v},k={self.k})",
        )

    def block_disks(self, i: int) -> tuple[int, ...]:
        """Disk indices of block ``i`` in generator order (not sorted)."""
        index = self.ring.index
        return tuple(index(e) for e in self.block_elements[i])


def ring_design(
    v: int,
    k: int,
    *,
    ring: Ring | None = None,
    gens: Sequence[Element] | None = None,
) -> RingDesign:
    """Construct the Theorem 1 ring-based block design.

    By default the ring and generators come from
    :func:`repro.algebra.ring_with_generators` (field for prime-power
    ``v``, Lemma 3 cross product otherwise).  Callers may supply their
    own ``ring`` and ``gens`` — Theorems 4-6 do, to induce removable
    redundancy.

    Raises:
        ValueError: if ``gens`` is not a valid generator set, or ``k``
            exceeds the Theorem 2 capacity ``M(v)`` when auto-building.
    """
    if (ring is None) != (gens is None):
        raise ValueError("supply both ring and gens, or neither")
    if ring is None:
        ring, gens_list = ring_with_generators(v, k)
    else:
        gens_list = list(gens)  # type: ignore[arg-type]
        if ring.order != v:
            raise ValueError(f"ring order {ring.order} != v={v}")
        if len(gens_list) != k:
            raise ValueError(f"got {len(gens_list)} generators, expected k={k}")
        if not is_generator_set(ring, gens_list):
            raise ValueError("pairwise differences of gens are not all invertible")

    g0 = gens_list[0]
    # Offsets g_i - g_0 are loop-invariant across all v(v-1) pairs.
    offsets = [ring.sub(g, g0) for g in gens_list]
    add, mul = ring.add, ring.mul

    pairs: list[tuple[Element, Element]] = []
    block_elements: list[tuple[Element, ...]] = []
    elems = ring.elements()
    for x in elems:
        for y in elems:
            if y == ring.zero:
                continue
            pairs.append((x, y))
            block_elements.append(tuple(add(x, mul(y, off)) for off in offsets))

    return RingDesign(
        ring=ring,
        gens=tuple(gens_list),
        pairs=tuple(pairs),
        block_elements=tuple(block_elements),
    )
