"""repro — parity-declustered data layouts for disk arrays.

A full reproduction of Schwabe & Sutherland, *Improved
Parity-Declustered Layouts for Disk Arrays* (SPAA 1994; JCSS 53:328-343,
1996): ring-based BIBD constructions, approximately-balanced layouts
(disk removal and stairway transformations), network-flow parity
balancing, and an event-driven disk-array simulator for evaluating the
resulting layouts.

Quick start::

    import repro

    layout = repro.build_layout(v=33, k=5)   # 33 disks, stripes of 5
    print(repro.evaluate(layout).summary())

Subpackages:

* :mod:`repro.algebra` — finite fields, rings, generator sets.
* :mod:`repro.designs` — BIBDs: Theorem 1 ring designs, Theorems 4-6
  reductions, Theorem 7 bounds.
* :mod:`repro.flow` — max-flow substrate and the Section 4 parity
  assignment (Theorems 13-14, Corollaries 15-17).
* :mod:`repro.layouts` — every layout construction plus metrics,
  address mapping, and feasibility predictors.
* :mod:`repro.sim` — discrete-event disk-array simulator with a
  byte-level XOR data plane.
* :mod:`repro.service` — sharded multi-array fleet serving with
  failure orchestration (``python -m repro serve``).
* :mod:`repro.core` — planner and top-level API.
"""

from .core import (
    FeasibilityCensus,
    LayoutPlan,
    NoFeasiblePlanError,
    build_design,
    build_layout,
    census,
    clear_registry,
    enumerate_plans,
    evaluate,
    get_layout,
    get_mapper,
    get_plan,
    plan,
    plan_layout,
    registry_stats,
)
from .layouts import AddressMapper, Layout, LayoutMetrics

__version__ = "1.1.0"

__all__ = [
    "FeasibilityCensus",
    "LayoutPlan",
    "NoFeasiblePlanError",
    "build_design",
    "build_layout",
    "census",
    "clear_registry",
    "enumerate_plans",
    "evaluate",
    "get_layout",
    "get_mapper",
    "get_plan",
    "plan",
    "plan_layout",
    "registry_stats",
    "AddressMapper",
    "Layout",
    "LayoutMetrics",
    "__version__",
]
