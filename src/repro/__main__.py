"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan V K``       — show every applicable construction, best first.
* ``build V K``      — build the best layout, print metrics (and the
                       layout table for small arrays).
* ``design V K``     — build the smallest BIBD, print its parameters.
* ``census VMAX``    — feasibility census over v <= VMAX (paper headline).
* ``rebuild V K``    — simulate a disk failure + rebuild.
* ``verify [V K]``   — conformance-check constructions against the
                       paper's Conditions 1-4 (``--all``: the full
                       construction-family sweep).
* ``serve``          — run a sharded fleet scenario (workload mix +
                       failure schedule + admission-controlled
                       concurrent rebuilds + live ``--grow``/
                       ``--shrink`` volume migration) and emit a JSON
                       report (see ``docs/SCENARIOS.md``).
* ``bench``          — run the benchmark suites and write the
                       ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import argparse
import sys

from .core import census, enumerate_plans, plan_layout
from .designs import best_design
from .layouts import evaluate_layout
from .sim import simulate_rebuild


def _cmd_plan(args: argparse.Namespace) -> int:
    plans = enumerate_plans(args.v, args.k)
    print(f"{'method':<18} {'size':>8} {'balanced':>9}  detail")
    for p in plans:
        print(f"{p.method:<18} {p.predicted_size:>8} {str(p.balanced):>9}  {p.detail}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    plan = plan_layout(args.v, args.k, max_size=args.max_size)
    layout = plan.build()
    layout.validate()
    m = evaluate_layout(layout)
    print(f"method: {plan.method}  {plan.detail}")
    print(m.summary())
    if layout.size <= 40 and layout.v <= 16:
        print(layout.render())
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    d = best_design(args.v, args.k)
    d.verify()
    print(f"{d.name}: {d.parameter_string()}")
    if args.blocks:
        for blk in d.blocks:
            print(" ", blk)
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    result = census(
        list(range(5, args.vmax + 1)),
        list(range(2, args.kmax + 1)),
        limit=args.max_size,
    )
    print(result.table())
    return 0


def _cmd_rebuild(args: argparse.Namespace) -> int:
    plan = plan_layout(args.v, args.k, max_size=args.max_size)
    layout = plan.build()
    rep = simulate_rebuild(
        layout, failed_disk=args.failed, parallelism=args.parallelism,
        verify_data=args.verify,
    )
    fracs = rep.read_fractions(layout.size)
    survivors = [f for d, f in enumerate(fracs) if d != args.failed]
    print(f"layout: {plan.method} (size {layout.size})")
    print(f"rebuilt {rep.stripes_rebuilt} stripes in {rep.duration_ms:.0f} ms")
    print(f"survivor read fraction: max {max(survivors):.3f} "
          f"(analytic (k-1)/(v-1) = {(args.k - 1) / (args.v - 1):.3f})")
    if args.verify:
        print(f"data verified bit-for-bit: {rep.data_verified}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import default_scenarios, run_conformance_sweep, scenarios_for_pair

    if args.v is not None and args.k is not None:
        scenarios = scenarios_for_pair(args.v, args.k, max_size=args.max_size)
        if not scenarios:
            print(
                f"error: no construction for v={args.v}, k={args.k} fits "
                f"size {args.max_size}",
                file=sys.stderr,
            )
            return 2
    elif args.all:
        scenarios = default_scenarios(max_size=args.max_size)
    else:
        print("error: give V K or --all", file=sys.stderr)
        return 2

    results = run_conformance_sweep(scenarios)
    failures = 0
    for sc, rep in results:
        if rep.passed and not args.verbose:
            print(
                f"PASS {sc.family:<14} {sc.name:<24} v={rep.v} size={rep.size} b={rep.b}"
            )
        else:
            if not rep.passed:
                failures += 1
            print(("PASS " if rep.passed else "FAIL ") + f"{sc.family:<14} {sc.name}")
            print(rep.summary())
    print(
        f"{len(results)} scenarios checked, {failures} with violations "
        f"(Conditions 1-4)"
    )
    return 0 if failures == 0 else 1


def _parse_failure_spec(spec: str) -> tuple["FailureEvent", ...]:
    """Parse ``time:array:disk[,time:array:disk...]`` failure specs."""
    from .service import FailureEvent

    events = []
    for part in spec.split(","):
        fields = part.split(":")
        if len(fields) != 3:
            raise ValueError(
                f"bad failure spec {part!r} (want time:array:disk)"
            )
        events.append(
            FailureEvent(
                time_ms=float(fields[0]),
                array=int(fields[1]),
                disk=int(fields[2]),
            )
        )
    return tuple(events)


def _parse_reshape_spec(spec: str, flag: str, grow: bool) -> tuple[int, int]:
    """Parse a ``FROM:TO`` reshape spec and sanity-check direction."""
    fields = spec.split(":")
    if len(fields) != 2:
        raise ValueError(f"bad {flag} spec {spec!r} (want FROM:TO)")
    start, target = int(fields[0]), int(fields[1])
    if grow and target <= start:
        raise ValueError(f"{flag} {spec!r} must increase the shard count")
    if not grow and target >= start:
        raise ValueError(f"{flag} {spec!r} must decrease the shard count")
    return start, target


def _peak_rss_mb() -> float | None:
    """Peak RSS of this process in MiB, or None when unavailable."""
    from .bench import peak_rss_mb

    return peak_rss_mb()


def _load_autoscale_policy(path: str) -> "AutoscalePolicy":
    """Load and validate an ``--autoscale`` policy JSON file."""
    import json
    from pathlib import Path

    from .service import AutoscalePolicy

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ValueError(
            f"cannot read --autoscale policy {path}: "
            f"{exc.strerror or exc}"
        ) from exc
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"--autoscale policy {path} is not valid JSON "
            f"({exc.msg}, line {exc.lineno})"
        ) from exc
    if not isinstance(spec, dict):
        raise ValueError(
            f"--autoscale policy {path} must be a JSON object"
        )
    return AutoscalePolicy.from_dict(spec)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .service import (
        FleetScenario,
        default_failure_schedule,
        run_fleet_scenario,
    )

    if args.smoke:
        # The CI/make-check quick mode: still a real fleet with a real
        # concurrent failure pair, just a short horizon.
        args.duration = min(args.duration, 400.0)
        args.interarrival = max(args.interarrival, 1.0)

    reshape_to = None
    if args.grow:
        args.shards, reshape_to = _parse_reshape_spec(
            args.grow, "--grow", grow=True
        )
    elif args.shrink:
        args.shards, reshape_to = _parse_reshape_spec(
            args.shrink, "--shrink", grow=False
        )

    policy = None
    if args.autoscale:
        if reshape_to is not None:
            raise ValueError(
                "--autoscale plans reshapes itself — it is mutually "
                "exclusive with --grow/--shrink"
            )
        policy = _load_autoscale_policy(args.autoscale)
    elif args.decisions_out:
        raise ValueError("--decisions-out needs --autoscale")

    if args.failure_spec:
        failures = _parse_failure_spec(args.failure_spec)
    else:
        # A reshape copies volumes between most arrays, and failures
        # must stay off the arrays a migration touches — so the default
        # failure pair applies only to pure failure scenarios.
        count = args.failures
        if count is None:
            count = 0 if (reshape_to is not None or policy is not None) else 2
        failures = default_failure_schedule(
            args.shards,
            args.v,
            count,
            args.duration * 0.25,
        )

    recorder = None
    if args.metrics_out or args.metrics_prom:
        from .obs import MetricsRecorder

        interval = args.metrics_interval
        if interval is None:
            # Default grid: 20 snapshot buckets across the horizon.
            # With an autoscale policy the recorder is the control
            # loop's input, so the default pins the grid to the
            # policy cadence — requesting metrics files must not
            # change what the autoscaler sees (an explicit
            # --metrics-interval changes the decision inputs, and is
            # validated against the policy lookback).
            if policy is not None:
                interval = policy.cadence_ms
            else:
                interval = args.duration / 20.0
        recorder = MetricsRecorder(interval, shards=args.shards)

    scenario = FleetScenario(
        shards=args.shards,
        v=args.v,
        k=args.k,
        duration_ms=args.duration,
        interarrival_ms=args.interarrival,
        read_fraction=args.read_fraction,
        zipf_theta=args.zipf,
        workload_seed=args.seed,
        failures=failures,
        admission=args.admission,
        rebuild_parallelism=args.rebuild_parallelism,
        verify_data=not args.no_verify,
        check_conformance=not args.no_conformance,
        volumes=args.volumes,
        placement=args.placement,
        reshape_to=reshape_to,
        reshape_at_ms=args.reshape_at,
        write_policy=args.write_policy,
        window_size=args.window,
        seed=args.seed,
        autoscale=policy,
    )
    if args.listen:
        from .service import run_frontend

        host, sep, port_text = args.listen.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(
                f"bad --listen address {args.listen!r} (want HOST:PORT)"
            )
        if args.workers < 1:
            raise ValueError(f"--workers must be >= 1, got {args.workers}")

        def ready(addr: tuple) -> None:
            print(f"serving on {addr[0]}:{addr[1]}", file=sys.stderr)

        return run_frontend(
            scenario,
            host=host or "127.0.0.1",
            port=int(port_text),
            ready=ready,
            workers=args.workers,
        )
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    unexpected_fallback = False
    if args.workers == 1:
        # The default stays the plain single-process path, untouched.
        payload = run_fleet_scenario(scenario, recorder=recorder).to_dict()
    else:
        from .service import run_fleet_scenario_parallel

        run = run_fleet_scenario_parallel(
            scenario, workers=args.workers, recorder=recorder
        )
        payload = run.to_dict()
        ex = run.execution
        if ex.serial_fallback:
            print(
                f"parallel: serial fallback ({ex.fallback_reason})",
                file=sys.stderr,
            )
            # A reshape legitimately collapses to serial; anything else
            # downgrading under --smoke is a regression the CI gate
            # must catch, not a note buried in stderr.
            if args.smoke and reshape_to is None:
                unexpected_fallback = True
                print(
                    "serve --smoke: unexpected serial fallback with "
                    f"--workers {args.workers}",
                    file=sys.stderr,
                )
        else:
            print(
                f"parallel: {len(ex.groups)} shard groups on "
                f"{ex.workers} workers ({ex.mp_context}, "
                f"{ex.cpu_count} CPUs available)",
                file=sys.stderr,
            )

    fleet = payload["fleet"]
    lost = (
        f", {fleet['lost_to_failures']} lost to failures"
        if fleet["lost_to_failures"]
        else ""
    )
    print(
        f"fleet: {fleet['shards']} arrays of v={args.v} k={args.k}, "
        f"{fleet['completed']}/{fleet['scheduled']} requests in "
        f"{fleet['duration_ms']:.0f} ms "
        f"({fleet['throughput_rps']:,.0f} req/s{lost})",
        file=sys.stderr,
    )
    if payload["conformance"] is not None:
        print(
            f"conformance: {'PASS' if payload['conformance']['passed'] else 'FAIL'} "
            f"(Conditions 1-4, {payload['conformance']['shards_checked']} shards)",
            file=sys.stderr,
        )
    for r in payload["rebuilds"]:
        verified = {True: "verified", False: "MISMATCH", None: "unverified"}[
            r["data_verified"]
        ]
        print(
            f"rebuild array {r['array']} disk {r['failed_disk']}: "
            f"waited {r['admission_delay_ms']:.0f} ms, took "
            f"{r['duration_ms']:.0f} ms, {r['stripes_rebuilt']} stripes, "
            f"{verified}",
            file=sys.stderr,
        )
    if payload["rebuilds"]:
        verdict = (
            f"all verified: {payload['all_rebuilt_verified']}"
            if not args.no_verify
            else "verification skipped (--no-verify)"
        )
        print(
            f"concurrent rebuilds observed: {payload['max_concurrent_rebuilds']} "
            f"(admission cap {args.admission}); {verdict}",
            file=sys.stderr,
        )
    mig = payload.get("migration")
    if mig is not None:
        verified = (
            f"all verified: {mig['all_verified']}"
            if not args.no_verify
            else "verification skipped (--no-verify)"
        )
        print(
            f"migration: {args.shards} -> {mig['target_shards']} shards, "
            f"{mig['completed_moves']}/{mig['planned_moves']} volumes moved "
            f"({mig['units_copied']} units copied, "
            f"{mig['held_requests']} requests held at cutover, "
            f"{mig['forwarded_writes']} writes mirrored); "
            f"zero lost: {mig['zero_lost']}; {verified}",
            file=sys.stderr,
        )
    asum = payload.get("autoscale")
    if asum is not None:
        for ev in asum["events"]:
            print(
                f"autoscale {ev['action']} at {ev['t_ms']:.0f} ms "
                f"({ev['reason']}): {ev['from_shards']} -> "
                f"{ev['to_shards']} shards, "
                f"{ev['completed_moves']}/{ev['planned_moves']} volumes "
                f"moved, converged at {ev['converged_at_ms']:.0f} ms "
                f"(verified={ev['all_verified']})",
                file=sys.stderr,
            )
        print(
            f"autoscale: {len(asum['decisions'])} ticks, "
            f"{len(asum['events'])} actions, final "
            f"{asum['final_shards']} shards; replay identical: "
            f"{asum['replay_identical']}; zero lost: {asum['zero_lost']}",
            file=sys.stderr,
        )
        if args.decisions_out:
            from pathlib import Path

            log_text = "".join(
                json.dumps(d, sort_keys=True) + "\n"
                for d in asum["decisions"]
            )
            Path(args.decisions_out).write_text(log_text)
            print(
                f"wrote {args.decisions_out} "
                f"({len(asum['decisions'])} decisions)",
                file=sys.stderr,
            )
    rss_exceeded = False
    peak_mb = _peak_rss_mb()
    if peak_mb is not None:
        print(f"peak rss: {peak_mb:.1f} MiB", file=sys.stderr)
        if args.max_rss_mb is not None and peak_mb > args.max_rss_mb:
            rss_exceeded = True
            print(
                f"serve: peak RSS {peak_mb:.1f} MiB exceeds "
                f"--max-rss-mb {args.max_rss_mb:g}",
                file=sys.stderr,
            )
    elif args.max_rss_mb is not None:
        print(
            "serve: --max-rss-mb ignored (resource module unavailable)",
            file=sys.stderr,
        )

    if recorder is not None or args.trace_out:
        from pathlib import Path

        if args.metrics_out:
            from .obs import build_rows, render_metrics_jsonl

            rows = build_rows(recorder, payload)
            Path(args.metrics_out).write_text(render_metrics_jsonl(rows))
            print(
                f"wrote {args.metrics_out} ({len(rows)} rows)",
                file=sys.stderr,
            )
        if args.metrics_prom:
            from .obs import prometheus_text

            Path(args.metrics_prom).write_text(
                prometheus_text(recorder, payload)
            )
            print(f"wrote {args.metrics_prom}", file=sys.stderr)
        if args.trace_out:
            from .obs import render_trace_jsonl, spans_from_payload

            spans = spans_from_payload(payload)
            Path(args.trace_out).write_text(render_trace_jsonl(spans))
            print(
                f"wrote {args.trace_out} ({len(spans)} spans)",
                file=sys.stderr,
            )

    text = json.dumps(payload, indent=2)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    else:
        print(text)
    ok = payload["passed"] and not unexpected_fallback and not rss_exceeded
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_bench_suite

    return 0 if run_bench_suite(args.suite, args.out_dir) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import parse_trace_jsonl, summarize_trace

    try:
        text = Path(args.trace).read_text()
    except OSError as exc:
        raise ValueError(
            f"cannot read trace file {args.trace}: {exc.strerror or exc}"
        ) from exc
    try:
        spans = parse_trace_jsonl(text)
    except ValueError as exc:
        raise ValueError(f"{args.trace}: {exc}") from exc
    if not spans:
        raise ValueError(
            f"{args.trace} contains no spans — empty trace file "
            "(was it written by serve --trace-out?)"
        )
    metrics_rows = None
    if args.metrics:
        try:
            metrics_text = Path(args.metrics).read_text()
        except OSError as exc:
            raise ValueError(
                f"cannot read metrics file {args.metrics}: "
                f"{exc.strerror or exc}"
            ) from exc
        metrics_rows = []
        for i, line in enumerate(metrics_text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                metrics_rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{args.metrics}: line {i} is not valid JSON "
                    f"({exc.msg}) — truncated or corrupt metrics file?"
                ) from exc
    runtime = None
    if args.report:
        try:
            report_text = Path(args.report).read_text()
        except OSError as exc:
            raise ValueError(
                f"cannot read report file {args.report}: "
                f"{exc.strerror or exc}"
            ) from exc
        try:
            report = json.loads(report_text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{args.report}: not valid JSON ({exc.msg})"
            ) from exc
        if not isinstance(report, dict):
            raise ValueError(f"{args.report}: expected a report object")
        runtime = report.get("runtime")
    print(summarize_trace(spans, metrics_rows, runtime=runtime))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Parity-declustered layout toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="enumerate constructions for (v, k)")
    p.add_argument("v", type=int)
    p.add_argument("k", type=int)
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("build", help="build the best layout for (v, k)")
    p.add_argument("v", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--max-size", type=int, default=10_000)
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser("design", help="build the smallest BIBD for (v, k)")
    p.add_argument("v", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--blocks", action="store_true", help="print all blocks")
    p.set_defaults(fn=_cmd_design)

    p = sub.add_parser("census", help="feasibility census (paper headline)")
    p.add_argument("vmax", type=int)
    p.add_argument("--kmax", type=int, default=8)
    p.add_argument("--max-size", type=int, default=10_000)
    p.set_defaults(fn=_cmd_census)

    p = sub.add_parser("rebuild", help="simulate failure + rebuild")
    p.add_argument("v", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--failed", type=int, default=0)
    p.add_argument("--parallelism", type=int, default=4)
    p.add_argument("--max-size", type=int, default=10_000)
    p.add_argument("--verify", action="store_true")
    p.set_defaults(fn=_cmd_rebuild)

    p = sub.add_parser(
        "verify", help="conformance-check constructions (Conditions 1-4)"
    )
    p.add_argument("v", nargs="?", type=int, default=None)
    p.add_argument("k", nargs="?", type=int, default=None)
    p.add_argument(
        "--all", action="store_true", help="sweep every construction family"
    )
    p.add_argument("--max-size", type=int, default=10_000)
    p.add_argument(
        "--verbose", action="store_true", help="full per-condition rows"
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "serve",
        help="run a sharded fleet scenario (failures + rebuilds), emit JSON",
    )
    p.add_argument("--shards", type=int, default=8, help="arrays in the fleet")
    p.add_argument("--v", type=int, default=9, help="disks per array")
    p.add_argument("--k", type=int, default=3, help="stripe size")
    p.add_argument(
        "--duration", type=float, default=1500.0, help="workload horizon (ms)"
    )
    p.add_argument(
        "--interarrival",
        type=float,
        default=0.5,
        help="aggregate fleet mean interarrival (ms)",
    )
    p.add_argument("--read-fraction", type=float, default=0.7)
    p.add_argument("--zipf", type=float, default=0.0, help="address skew theta")
    p.add_argument(
        "--failures",
        type=int,
        default=None,
        help="simultaneous single-disk failures on distinct arrays "
        "(default: 2, or 0 when --grow/--shrink is given)",
    )
    p.add_argument(
        "--failure-spec",
        default=None,
        help="explicit schedule time:array:disk[,...] (overrides --failures)",
    )
    reshape = p.add_mutually_exclusive_group()
    reshape.add_argument(
        "--grow",
        default=None,
        metavar="FROM:TO",
        help="start with FROM arrays and live-migrate to TO mid-run "
        "(volume copies verified bit-for-bit, zero lost requests)",
    )
    reshape.add_argument(
        "--shrink",
        default=None,
        metavar="FROM:TO",
        help="start with FROM arrays and drain down to TO mid-run",
    )
    p.add_argument(
        "--reshape-at",
        type=float,
        default=None,
        help="when the grow/shrink fires (ms; default: duration/4)",
    )
    p.add_argument(
        "--autoscale",
        default=None,
        metavar="POLICY.json",
        help="run the autoscaling control loop with this policy (JSON, "
        "see docs/SCENARIOS.md): poll live metrics on a sim-clock "
        "cadence and grow/shrink the fleet through the migration path; "
        "mutually exclusive with --grow/--shrink",
    )
    p.add_argument(
        "--decisions-out",
        default=None,
        metavar="FILE",
        help="write the autoscale decision log as JSONL (replayable "
        "byte-identically from the recorded snapshots; needs "
        "--autoscale)",
    )
    p.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run as a long-lived front-end: accept request streams "
        "over a local socket (line-delimited JSON ops) and serve each "
        "through this scenario's warm runtime until a shutdown op "
        "(combine with --workers N for a persistent worker pool; "
        "repeated serves reuse the pool and the compiled-artifact "
        "cache, reports stay canonically identical to batch)",
    )
    p.add_argument(
        "--volumes",
        type=int,
        default=None,
        metavar="N",
        help="logical volumes in the fleet (default: 16 per shard); a "
        "small count can split a reshape's move graph into independent "
        "components that --workers runs in parallel",
    )
    p.add_argument(
        "--placement",
        choices=("ring", "p2c", "weighted"),
        default="ring",
        help="volume placement policy (p2c/weighted tighten request "
        "balance from ~2x to <=1.3x max/min)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent shard groups (default 1 "
        "= single-process; reports are byte-identical across worker "
        "counts, see docs/SCENARIOS.md)",
    )
    p.add_argument(
        "--admission",
        type=int,
        default=2,
        help="max rebuilds running concurrently fleet-wide",
    )
    p.add_argument("--rebuild-parallelism", type=int, default=4)
    p.add_argument(
        "--write-policy",
        choices=("rmw", "write_through"),
        default="rmw",
        help="write handling: rmw = read-modify-write parity update "
        "(two chained phases), write_through = single-phase full-stripe "
        "writes (analytically solvable)",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip data planes / bit-for-bit rebuild verification",
    )
    p.add_argument(
        "--no-conformance",
        action="store_true",
        help="skip the Conditions 1-4 gate",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="stream the workload in windows of N requests instead of "
        "materializing it (constant peak memory at any horizon; the "
        "report is byte-identical to the materialized run)",
    )
    p.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="fail (exit 1) if peak RSS exceeds this many MiB; peak is "
        "printed to stderr either way",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode for CI: short horizon, light load",
    )
    p.add_argument(
        "--json", default=None, help="write the report here instead of stdout"
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="record sim-clock metrics and write periodic snapshot rows "
        "as JSONL (byte-identical across --window sizes and --workers "
        "counts; see docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="MS",
        help="snapshot grid width in simulated ms (default: duration/20)",
    )
    p.add_argument(
        "--metrics-prom",
        default=None,
        metavar="FILE",
        help="also write a Prometheus text exposition of the end state",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write scenario/shard/rebuild/migration spans as JSONL "
        "(summarize with `python -m repro trace FILE`)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="summarize a --trace-out span file (phases, timelines)",
    )
    p.add_argument("trace", help="span JSONL file from serve --trace-out")
    p.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="matching report JSON (serve --json): adds the warm "
        "runtime's pool/cache/shm counters to the summary",
    )
    p.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="matching --metrics-out file: adds balance-over-time and "
        "the worst-balance snapshot to the summary",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "bench", help="run benchmark suites, write BENCH_*.json artifacts"
    )
    p.add_argument(
        "--suite",
        choices=("all", "mapping", "sim", "service"),
        default="all",
        help="which suite to run (default: all)",
    )
    p.add_argument(
        "--out-dir",
        default=".",
        help="directory for the JSON artifacts (default: cwd)",
    )
    p.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
