"""Simulation statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyStats", "summarize"]


@dataclass
class LatencyStats:
    """Streaming collection of request latencies (milliseconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        """Add one sample."""
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


def summarize(stats: LatencyStats) -> dict[str, float]:
    """Mean / p50 / p95 / max summary dict."""
    return {
        "count": float(stats.count),
        "mean": stats.mean,
        "p50": stats.percentile(50),
        "p95": stats.percentile(95),
        "max": stats.max,
    }
