"""Simulation statistics helpers.

Two latency accumulators share one summary contract:

* :class:`LatencyStats` keeps every raw sample (exact, O(n) memory) —
  the default for materialized runs, where tests compare sample lists
  bit-for-bit;
* :class:`LatencyDigest` keeps only a running count/sum/max plus a
  log-bucketed histogram (constant memory) — what the streaming
  windowed executors feed, so a 10^8-request horizon does not hold
  10^8 floats.

For the two to be byte-identical in summaries, the summary statistics
must be computable from either representation with the same float
operations:

* ``count`` and ``max`` are trivially exact in both;
* ``mean`` is the left-to-right running sum divided by the count — the
  digest accumulates its sum in the exact order samples are emitted,
  which the windowed executors arrange to match the order the
  materialized engines append them, so ``sum(samples)`` and the running
  sum are bit-identical;
* percentiles are **quantized**: every sample is snapped to the lower
  bound of a base-2 logarithmic bucket (:func:`quantize_latency`,
  relative resolution 2^-12 ≈ 0.02%) before the nearest-rank pick.
  Quantization makes the percentile a pure function of the bucket
  *counts* — order-independent and mergeable — so the digest's
  histogram and the exact sample list agree bit-for-bit.

Fleet reports merge per-shard accumulators with
:func:`merge_summaries`: counts and histograms add, maxes max, and the
merged mean folds per-part sums left-to-right in part order — the same
fold whether the parts are lists or digests, so serial, windowed, and
process-parallel fleet reports stay byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "LatencyStats",
    "LatencyDigest",
    "quantize_latency",
    "summarize",
    "merge_summaries",
    "percentile_of_parts",
]

#: Sub-buckets per power-of-two octave (as a bit count): latencies are
#: quantized to a relative resolution of 2^-12 before percentile ranks
#: are taken.  Occupied buckets per octave are bounded by 2^12 and a
#: realistic latency distribution spans a few dozen octaves, so a
#: digest's histogram stays a few thousand entries at any horizon.
_QUANT_BITS = 12
_QUANT_SCALE = float(1 << (_QUANT_BITS + 1))
_QUANT_MASK = (1 << _QUANT_BITS) - 1
#: Bucket key reserved for non-positive samples (sorts before all real
#: keys, whose exponent part dominates).
_ZERO_KEY = -(1 << 62)


def _bucket_key(x: float) -> int:
    """Map a positive latency to its log-bucket key (monotone in x)."""
    m, e = math.frexp(x)  # x = m * 2**e with m in [0.5, 1)
    return (e << _QUANT_BITS) | int((m - 0.5) * _QUANT_SCALE)


def _bucket_value(key: int) -> float:
    """The bucket's lower bound — the representative every member of
    the bucket quantizes to."""
    if key == _ZERO_KEY:
        return 0.0
    return math.ldexp(0.5 + (key & _QUANT_MASK) / _QUANT_SCALE, key >> _QUANT_BITS)


def bucket_keys_array(arr):
    """Vectorized :func:`_bucket_key` over a float64 ndarray.

    Reproduces the scalar path bit for bit: ``np.frexp`` matches
    ``math.frexp``, the mantissa scaling is the same double
    arithmetic, and ``astype(int64)`` truncates like ``int()``.
    Non-positive samples map to :data:`_ZERO_KEY` as in
    :meth:`LatencyDigest.record`.
    """
    import numpy as np

    m, e = np.frexp(arr)
    keys = (e.astype(np.int64) << _QUANT_BITS) | (
        (m - 0.5) * _QUANT_SCALE
    ).astype(np.int64)
    if arr.min() <= 0.0:
        keys = np.where(arr > 0.0, keys, _ZERO_KEY)
    return keys


def quantize_latency(x: float) -> float:
    """Snap a latency to its log-bucket lower bound (monotone; relative
    error < 2^-12).  Non-positive values collapse to 0.0."""
    if x <= 0.0:
        return 0.0
    return _bucket_value(_bucket_key(x))


def _rank(p: float, count: int) -> int:
    """Nearest-rank index for percentile ``p`` over ``count`` samples."""
    return max(0, math.ceil(p / 100.0 * count) - 1)


def _bucket_percentile(buckets: dict[int, int], count: int, p: float) -> float:
    target = _rank(p, count)
    seen = 0
    for key in sorted(buckets):
        seen += buckets[key]
        if seen > target:
            return _bucket_value(key)
    return 0.0  # pragma: no cover - counts always sum to count


@dataclass
class LatencyStats:
    """Exact collection of request latencies (milliseconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        """Add one sample."""
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        """Left-to-right sum of the samples (0.0 when empty)."""
        return sum(self.samples) if self.samples else 0.0

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over quantized samples, ``p`` in
        [0, 100] (see :func:`quantize_latency`)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        return quantize_latency(ordered[_rank(p, len(ordered))])

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def bucket_counts(self) -> dict[int, int]:
        """Quantization-bucket histogram of the samples."""
        counts: dict[int, int] = {}
        for x in self.samples:
            key = _bucket_key(x) if x > 0.0 else _ZERO_KEY
            counts[key] = counts.get(key, 0) + 1
        return counts


#: extend_array defers histogram counting into pending key arrays and
#: consolidates them vectorized once this many keys are queued —
#: bounding per-digest staging memory while amortizing the sort.
_CONSOLIDATE_AT = 4096


class LatencyDigest:
    """Constant-memory latency accumulator, summary-identical to
    :class:`LatencyStats` when fed the same samples in the same order."""

    __slots__ = (
        "count",
        "total",
        "max",
        "_buckets",
        "_pending",
        "_pending_n",
        "_hkeys",
        "_hcounts",
        "_cache",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        #: scalar-path histogram (record()).
        self._buckets: dict[int, int] = {}
        #: vector-path staging: raw key arrays queued by extend_array,
        #: consolidated into the sorted (keys, counts) pair below.
        self._pending: list = []
        self._pending_n = 0
        self._hkeys = None
        self._hcounts = None
        self._cache: dict[int, int] | None = None

    def record(self, latency: float) -> None:
        """Add one sample (order matters for the bit-exact mean)."""
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency
        key = _bucket_key(latency) if latency > 0.0 else _ZERO_KEY
        b = self._buckets
        b[key] = b.get(key, 0) + 1
        self._cache = None

    def extend(self, latencies) -> None:
        """Add samples in order."""
        for x in latencies:
            self.record(x)

    def extend_array(self, arr) -> None:
        """Add a float64 ndarray of samples in order — vectorized, but
        state-identical to :meth:`record` per element (see
        :meth:`extend_keyed` for the fold and
        :func:`bucket_keys_array` for the keys)."""
        n = arr.size
        if not n:
            return
        self.extend_keyed(arr, bucket_keys_array(arr))

    def extend_keyed(self, arr, keys) -> None:
        """Add a float64 ndarray of samples whose histogram keys were
        already computed (:func:`bucket_keys_array`), in order.

        State-identical to :meth:`record` per element: the running
        total performs the same left-to-right float fold
        (``np.add.accumulate`` is a strict sequential accumulation —
        each partial carries a loop dependency, so no reassociation —
        and seeding the buffer with the prior total reproduces
        ``((total + x0) + x1) + ...`` bit for bit).  Histogram
        counting is deferred: key arrays queue in ``_pending`` and
        consolidate vectorized, so no per-sample Python object is
        ever built."""
        import numpy as np

        n = arr.size
        if not n:
            return
        self.count += n
        buf = np.empty(n + 1)
        buf[0] = self.total
        buf[1:] = arr
        np.add.accumulate(buf, out=buf)
        self.total = float(buf[-1])
        peak = arr.max()
        if peak > self.max:
            self.max = float(peak)
        self._pending.append(keys)
        self._pending_n += n
        self._cache = None
        if self._pending_n >= _CONSOLIDATE_AT:
            self._consolidate()

    def _consolidate(self) -> None:
        """Fold pending key arrays into the sorted (keys, counts)
        histogram pair — pure counting, so order is irrelevant."""
        import numpy as np

        if not self._pending:
            return
        batch = (
            np.concatenate(self._pending)
            if len(self._pending) > 1
            else self._pending[0]
        )
        self._pending = []
        self._pending_n = 0
        uk, uc = np.unique(batch, return_counts=True)
        if self._hkeys is None:
            self._hkeys, self._hcounts = uk, uc
            return
        allk = np.concatenate([self._hkeys, uk])
        allc = np.concatenate([self._hcounts, uc])
        order = np.argsort(allk, kind="stable")
        allk = allk[order]
        allc = allc[order]
        first = np.empty(len(allk), dtype=bool)
        first[0] = True
        np.not_equal(allk[1:], allk[:-1], out=first[1:])
        idx = np.flatnonzero(first)
        self._hkeys = allk[idx]
        self._hcounts = np.add.reduceat(allc, idx)

    def _counts(self) -> dict[int, int]:
        """The combined histogram (scalar + vector paths), cached
        until the next ingestion."""
        cache = self._cache
        if cache is None:
            self._consolidate()
            cache = dict(self._buckets)
            if self._hkeys is not None:
                if cache:
                    for key, k in zip(
                        self._hkeys.tolist(), self._hcounts.tolist()
                    ):
                        cache[key] = cache.get(key, 0) + k
                else:
                    cache = dict(
                        zip(self._hkeys.tolist(), self._hcounts.tolist())
                    )
            self._cache = cache
        return cache

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self.count:
            return 0.0
        return _bucket_percentile(self._counts(), self.count, p)

    def bucket_counts(self) -> dict[int, int]:
        return dict(self._counts())


def summarize(stats: LatencyStats | LatencyDigest) -> dict[str, float]:
    """Mean / p50 / p95 / max summary dict (``max`` is the exact raw
    maximum; percentiles are quantized — see the module docstring)."""
    return {
        "count": float(stats.count),
        "mean": stats.mean,
        "p50": stats.percentile(50),
        "p95": stats.percentile(95),
        "max": stats.max,
    }


def percentile_of_parts(
    parts: list[LatencyStats | LatencyDigest], p: float
) -> float:
    """Quantized nearest-rank percentile over the union of several
    accumulators (0.0 when all are empty).

    Like :func:`merge_summaries`, the rank is taken over the summed
    bucket histograms, so the result is a pure order-independent
    function of the per-part state — exact lists and streaming digests
    agree bit for bit.  This is how service-level objectives query
    percentiles the summary dict does not carry (e.g. p99 over the
    buckets of one time window) without changing the report schema.
    """
    count = 0
    buckets: dict[int, int] = {}
    for part in parts:
        c = part.count
        if not c:
            continue
        count += c
        for key, k in part.bucket_counts().items():
            buckets[key] = buckets.get(key, 0) + k
    if not count:
        return 0.0
    return _bucket_percentile(buckets, count, p)


def merge_summaries(parts: list[LatencyStats | LatencyDigest]) -> dict[str, float]:
    """Summarize the union of several accumulators.

    The merged mean folds per-part sums left-to-right in part order;
    percentiles rank over the summed bucket histograms.  Both are pure
    functions of the (ordered) per-part state, so the result is
    identical whether the parts are exact lists or streaming digests —
    the byte-identity seam between materialized, windowed, and
    process-parallel fleet reports.
    """
    count = 0
    total = 0.0
    peak = 0.0
    buckets: dict[int, int] = {}
    for part in parts:
        c = part.count
        if not c:
            continue
        count += c
        total += part.total
        if part.max > peak:
            peak = part.max
        for key, k in part.bucket_counts().items():
            buckets[key] = buckets.get(key, 0) + k
    if not count:
        return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": float(count),
        "mean": total / count,
        "p50": _bucket_percentile(buckets, count, 50),
        "p95": _bucket_percentile(buckets, count, 95),
        "max": peak,
    }
