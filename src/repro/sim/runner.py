"""High-level simulation entry points.

Two canned experiments mirror the paper's evaluation story:

* :func:`simulate_rebuild` — fail a disk, rebuild it (optionally under
  foreground load), and report the per-disk read fractions that
  Condition 3 bounds analytically at ``(k-1)/(v-1)``.
* :func:`simulate_workload` — run a synthetic workload (optionally in
  degraded mode) and report latency and per-disk load, exposing the
  parity-contention effect Condition 2 bounds via the maximum parity
  overhead.

Both follow the compile-then-execute model: the whole request stream /
rebuild scan is planned as NumPy arrays before the event loop starts.
Execution goes through :func:`repro.sim.compile.execute_compiled`:
single-phase workloads skip the event engine entirely (each disk queue
is solved analytically), mixed workloads run on the calendar-queue
batch-stepped executor, and ``batched=False`` recovers the per-event
scalar pipeline — all produce the identical report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import get_incidence
from ..layouts import Layout
from ..layouts.sparing import DistributedSparing
from .compile import (
    StreamWindows,
    compile_workload,
    execute_compiled,
    schedule_compiled_scalar,
)
from .controller import ArrayController
from .disk import DiskParameters
from .reconstruction import RebuildProcess, RebuildReport
from .stats import summarize
from .stream import execute_windows
from .workload import WorkloadConfig, drive_workload

__all__ = [
    "SparePlan",
    "WorkloadReport",
    "simulate_rebuild",
    "simulate_workload",
    "spare_map_for_failure",
    "spare_plan_for_failure",
]


@dataclass(frozen=True)
class SparePlan:
    """Vectorized rebuild-target plan under distributed sparing.

    Row ``i`` says: crossing stripe ``stripe_ids[i]`` (ascending, the
    rebuild scan order) writes its recovered unit to
    ``(disks[i], offsets[i])``.
    """

    stripe_ids: np.ndarray
    disks: np.ndarray
    offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.stripe_ids)

    def as_dict(self) -> dict[int, tuple[int, int]]:
        """The scalar ``{stripe id: (disk, offset)}`` view."""
        return {
            int(s): (int(d), int(o))
            for s, d, o in zip(self.stripe_ids, self.disks, self.offsets)
        }


def spare_plan_for_failure(
    sparing: DistributedSparing, failed_disk: int
) -> SparePlan:
    """Resolve every crossing stripe's rebuild target in one vectorized
    pass over the sparse incidence.

    A stripe whose own spare unit sits on the failed disk borrows the
    spare of a stripe that does *not* cross the failed disk (those
    stripes need no rebuild, so their spares are free); donors are
    drawn from the highest-numbered free stripes first, exactly like
    the scalar pool.

    Raises:
        ValueError: if the free-spare pool runs out (cannot happen for
            declustered layouts, where non-crossing stripes abound).
    """
    layout = sparing.layout
    b = layout.b
    inc = get_incidence(layout)
    spare_d = np.fromiter((d for d, _ in sparing.spare_units), np.int64, count=b)
    spare_o = np.fromiter((o for _, o in sparing.spare_units), np.int64, count=b)
    crossing = np.zeros(b, dtype=bool)
    crossing[inc.stripe_of_unit()[inc.disks == failed_disk]] = True
    pool_sids = np.flatnonzero(~crossing & (spare_d != failed_disk))
    cross_sids = np.flatnonzero(crossing)
    out_d = spare_d[cross_sids].copy()
    out_o = spare_o[cross_sids].copy()
    needy = out_d == failed_disk
    n_needy = int(needy.sum())
    if n_needy > len(pool_sids):
        raise ValueError("no free spare units left to absorb the failed disk")
    donors = pool_sids[::-1][:n_needy]
    out_d[needy] = spare_d[donors]
    out_o[needy] = spare_o[donors]
    return SparePlan(stripe_ids=cross_sids, disks=out_d, offsets=out_o)


def spare_map_for_failure(
    sparing: DistributedSparing, failed_disk: int
) -> dict[int, tuple[int, int]]:
    """Scalar view of :func:`spare_plan_for_failure` — the same
    assignment as a ``{stripe id: (disk, offset)}`` dict."""
    return spare_plan_for_failure(sparing, failed_disk).as_dict()


@dataclass
class WorkloadReport:
    """Outcome of a workload simulation."""

    duration_ms: float
    scheduled: int
    latency: dict[str, dict[str, float]]
    per_disk_ios: list[int]
    utilizations: list[float]

    @property
    def max_min_io_ratio(self) -> float:
        """Load imbalance: busiest over least-busy surviving disk."""
        active = [c for c in self.per_disk_ios if c > 0]
        return max(active) / min(active) if active else 1.0


def simulate_rebuild(
    layout: Layout,
    *,
    failed_disk: int = 0,
    parallelism: int = 4,
    disk_params: DiskParameters | None = None,
    workload: WorkloadConfig | None = None,
    workload_duration_ms: float = 0.0,
    verify_data: bool = False,
    sparing: DistributedSparing | None = None,
    seed: int = 0,
    batched: bool = True,
) -> RebuildReport:
    """Fail ``failed_disk`` and rebuild it to a spare.

    With ``workload`` given, foreground traffic (in degraded mode)
    competes with rebuild IOs for the same disk queues for
    ``workload_duration_ms``.  With ``verify_data=True``, a byte-level
    data plane checks the rebuilt image bit-for-bit.  With ``sparing``
    given, recovered units are written to the layout's distributed spare
    units instead of a dedicated spare disk.  ``batched`` selects the
    vectorized scan/submission planning (the default) or the scalar
    per-stripe walk; both produce the same report.
    """
    ctrl = ArrayController(
        layout, disk_params=disk_params, dataplane=verify_data, seed=seed
    )
    ctrl.fail_disk(failed_disk)
    if workload is not None and workload_duration_ms > 0:
        drive_workload(ctrl, workload, workload_duration_ms, batched=batched)
    if sparing is None:
        spare_units = None
    elif batched:
        spare_units = spare_plan_for_failure(sparing, failed_disk)
    else:
        spare_units = spare_map_for_failure(sparing, failed_disk)
    rebuild = RebuildProcess(
        ctrl,
        parallelism=parallelism,
        spare_units=spare_units,
        batched=batched,
    )
    rebuild.start()
    ctrl.sim.run()
    if not rebuild.done or rebuild.report is None:
        raise RuntimeError("rebuild did not complete (empty stripe set?)")
    return rebuild.report


def simulate_workload(
    layout: Layout,
    *,
    duration_ms: float = 10_000.0,
    config: WorkloadConfig | None = None,
    disk_params: DiskParameters | None = None,
    failed_disk: int | None = None,
    verify_data: bool = False,
    seed: int = 0,
    batched: bool = True,
    write_policy: str = "rmw",
    window_size: int | None = None,
    recorder=None,
) -> WorkloadReport:
    """Run a synthetic workload against a layout.

    ``failed_disk`` switches the array to degraded mode before traffic
    starts.  The stream is compiled up front; single-phase traces
    (read-only, or any mix under ``write_policy="write_through"``)
    execute through the analytic queue solver (no event loop at all),
    anything else through the calendar-queue batch-stepped executor,
    and ``batched=False`` through the scalar per-event path — all
    produce the same report.  With ``window_size`` set, the stream is
    never materialized: it is generated, translated, and executed one
    window at a time (:func:`repro.sim.stream.execute_windows`) with
    latency reduced to constant-memory digests — peak memory is one
    window at any horizon, and the report is byte-identical to the
    materialized run.  Returns latency summaries keyed by request kind
    plus per-disk load.

    With ``recorder`` (a :class:`repro.obs.MetricsRecorder`), the run
    is instrumented on the simulated clock: the report itself is
    unchanged, and the recorder fills with completion-bucketed latency,
    arrivals, and the engine label (also surfaced as the report's
    ``engine`` attribute either way).
    """
    cfg = config if config is not None else WorkloadConfig()
    ctrl = ArrayController(
        layout,
        disk_params=disk_params,
        dataplane=verify_data,
        seed=seed,
        write_policy=write_policy,
    )
    if recorder is not None:
        ctrl.obs = recorder
        ctrl.obs_shard = 0
    if failed_disk is not None:
        ctrl.fail_disk(failed_disk)
    if window_size is not None:
        if not batched:
            raise ValueError("windowed execution requires batched=True")
        windows = StreamWindows(
            cfg, duration_ms, ctrl.mapper.capacity, window_size=window_size
        )
        scheduled, digests = execute_windows(
            ctrl, windows, read_only_hint=cfg.read_fraction >= 1.0
        )
        if recorder is not None:
            # Arrivals are pure workload input; record them after the
            # run so a tie-abort replay's shard reset cannot drop them.
            for times, _is_read, _lbas in windows:
                recorder.arrivals(0, times)
        report = WorkloadReport(
            duration_ms=ctrl.sim.now,
            scheduled=scheduled,
            latency={kind: summarize(d) for kind, d in digests.items()},
            per_disk_ios=ctrl.per_disk_completed(),
            utilizations=ctrl.utilizations(),
        )
        report.engine = ctrl.last_engine
        return report
    compiled = compile_workload(ctrl.mapper, cfg, duration_ms)
    if batched:
        scheduled = execute_compiled(ctrl, compiled)
    else:
        scheduled = schedule_compiled_scalar(ctrl, compiled)
        ctrl.sim.run()
    if recorder is not None:
        recorder.arrivals(0, compiled.times)
    report = WorkloadReport(
        duration_ms=ctrl.sim.now,
        scheduled=scheduled,
        latency={kind: summarize(st) for kind, st in ctrl.latency.items()},
        per_disk_ios=ctrl.per_disk_completed(),
        utilizations=ctrl.utilizations(),
    )
    report.engine = ctrl.last_engine
    return report
