"""High-level simulation entry points.

Two canned experiments mirror the paper's evaluation story:

* :func:`simulate_rebuild` — fail a disk, rebuild it (optionally under
  foreground load), and report the per-disk read fractions that
  Condition 3 bounds analytically at ``(k-1)/(v-1)``.
* :func:`simulate_workload` — run a synthetic workload (optionally in
  degraded mode) and report latency and per-disk load, exposing the
  parity-contention effect Condition 2 bounds via the maximum parity
  overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layouts import Layout
from ..layouts.sparing import DistributedSparing
from .controller import ArrayController
from .disk import DiskParameters
from .reconstruction import RebuildProcess, RebuildReport
from .stats import summarize
from .workload import WorkloadConfig, drive_workload

__all__ = [
    "WorkloadReport",
    "simulate_rebuild",
    "simulate_workload",
    "spare_map_for_failure",
]


def spare_map_for_failure(
    sparing: DistributedSparing, failed_disk: int
) -> dict[int, tuple[int, int]]:
    """Resolve each crossing stripe's rebuild target under distributed
    sparing.

    A stripe whose own spare unit sits on the failed disk borrows the
    spare of a stripe that does *not* cross the failed disk (those
    stripes need no rebuild, so their spares are free).

    Raises:
        ValueError: if the free-spare pool runs out (cannot happen for
            declustered layouts, where non-crossing stripes abound).
    """
    layout = sparing.layout
    spare_map: dict[int, tuple[int, int]] = {}
    pool = [
        spare
        for sid, spare in enumerate(sparing.spare_units)
        if failed_disk not in layout.stripes[sid].disks
        and spare[0] != failed_disk
    ]
    for sid, stripe in enumerate(layout.stripes):
        if failed_disk not in stripe.disks:
            continue
        spare = sparing.spare_units[sid]
        if spare[0] != failed_disk:
            spare_map[sid] = spare
        else:
            if not pool:
                raise ValueError(
                    "no free spare units left to absorb the failed disk"
                )
            spare_map[sid] = pool.pop()
    return spare_map


@dataclass
class WorkloadReport:
    """Outcome of a workload simulation."""

    duration_ms: float
    scheduled: int
    latency: dict[str, dict[str, float]]
    per_disk_ios: list[int]
    utilizations: list[float]

    @property
    def max_min_io_ratio(self) -> float:
        """Load imbalance: busiest over least-busy surviving disk."""
        active = [c for c in self.per_disk_ios if c > 0]
        return max(active) / min(active) if active else 1.0


def simulate_rebuild(
    layout: Layout,
    *,
    failed_disk: int = 0,
    parallelism: int = 4,
    disk_params: DiskParameters | None = None,
    workload: WorkloadConfig | None = None,
    workload_duration_ms: float = 0.0,
    verify_data: bool = False,
    sparing: DistributedSparing | None = None,
    seed: int = 0,
) -> RebuildReport:
    """Fail ``failed_disk`` and rebuild it to a spare.

    With ``workload`` given, foreground traffic (in degraded mode)
    competes with rebuild IOs for the same disk queues for
    ``workload_duration_ms``.  With ``verify_data=True``, a byte-level
    data plane checks the rebuilt image bit-for-bit.  With ``sparing``
    given, recovered units are written to the layout's distributed spare
    units instead of a dedicated spare disk.
    """
    ctrl = ArrayController(
        layout, disk_params=disk_params, dataplane=verify_data, seed=seed
    )
    ctrl.fail_disk(failed_disk)
    if workload is not None and workload_duration_ms > 0:
        drive_workload(ctrl, workload, workload_duration_ms)
    spare_map = (
        spare_map_for_failure(sparing, failed_disk) if sparing is not None else None
    )
    rebuild = RebuildProcess(ctrl, parallelism=parallelism, spare_units=spare_map)
    rebuild.start()
    ctrl.sim.run()
    if not rebuild.done or rebuild.report is None:
        raise RuntimeError("rebuild did not complete (empty stripe set?)")
    return rebuild.report


def simulate_workload(
    layout: Layout,
    *,
    duration_ms: float = 10_000.0,
    config: WorkloadConfig | None = None,
    disk_params: DiskParameters | None = None,
    failed_disk: int | None = None,
    verify_data: bool = False,
    seed: int = 0,
) -> WorkloadReport:
    """Run a synthetic workload against a layout.

    ``failed_disk`` switches the array to degraded mode before traffic
    starts.  Returns latency summaries keyed by request kind plus
    per-disk load.
    """
    cfg = config if config is not None else WorkloadConfig()
    ctrl = ArrayController(
        layout, disk_params=disk_params, dataplane=verify_data, seed=seed
    )
    if failed_disk is not None:
        ctrl.fail_disk(failed_disk)
    scheduled = drive_workload(ctrl, cfg, duration_ms)
    ctrl.sim.run()
    return WorkloadReport(
        duration_ms=ctrl.sim.now,
        scheduled=scheduled,
        latency={kind: summarize(st) for kind, st in ctrl.latency.items()},
        per_disk_ios=ctrl.per_disk_completed(),
        utilizations=ctrl.utilizations(),
    )
