"""Event-driven disk-array simulator: the evaluation substrate.

The paper defers performance evaluation to the Holland–Gibson simulator
(CMU RAIDframe lineage); this subpackage is our from-scratch equivalent:
a discrete-event engine, a parametric disk service model, an array
controller executing any :class:`repro.layouts.Layout`, synthetic
workloads, an on-line rebuild process, and a byte-level XOR data plane
for end-to-end correctness checks.
"""

from .analysis import LoadEstimate, analyze_load, declustering_ratio
from .batchstep import step_compiled
from .compile import (
    ArrayWindows,
    CompiledTrace,
    StreamWindows,
    compile_stream,
    compile_trace,
    compile_workload,
    execute_compiled,
    generate_request_stream,
    schedule_compiled,
    schedule_compiled_scalar,
    solve_compiled,
)
from .controller import ArrayController
from .dataplane import DataPlane
from .disk import Disk, DiskFailedError, DiskIO, DiskParameters
from .events import Simulator, calendar_bucket_width
from .reconstruction import RebuildProcess, RebuildReport
from .runner import (
    SparePlan,
    WorkloadReport,
    simulate_rebuild,
    simulate_workload,
    spare_map_for_failure,
    spare_plan_for_failure,
)
from .stats import LatencyDigest, LatencyStats, merge_summaries, quantize_latency, summarize
from .stream import execute_windows
from .trace import (
    TraceRecord,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_trace,
)
from .workload import WorkloadConfig, drive_workload

__all__ = [
    "LoadEstimate",
    "analyze_load",
    "declustering_ratio",
    "ArrayWindows",
    "CompiledTrace",
    "StreamWindows",
    "compile_stream",
    "compile_trace",
    "compile_workload",
    "generate_request_stream",
    "schedule_compiled",
    "schedule_compiled_scalar",
    "solve_compiled",
    "execute_compiled",
    "execute_windows",
    "step_compiled",
    "calendar_bucket_width",
    "ArrayController",
    "DataPlane",
    "Disk",
    "DiskFailedError",
    "DiskIO",
    "DiskParameters",
    "Simulator",
    "RebuildProcess",
    "RebuildReport",
    "SparePlan",
    "WorkloadReport",
    "simulate_rebuild",
    "simulate_workload",
    "spare_map_for_failure",
    "spare_plan_for_failure",
    "LatencyDigest",
    "LatencyStats",
    "merge_summaries",
    "quantize_latency",
    "summarize",
    "TraceRecord",
    "load_trace",
    "replay_trace",
    "save_trace",
    "synthesize_trace",
    "WorkloadConfig",
    "drive_workload",
]
