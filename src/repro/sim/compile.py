"""Trace compilation: turn a whole request stream into pre-mapped arrays.

The scalar pipeline pays Python overhead per request three times —
generating it, scheduling a closure for it, and translating its address
when the closure fires.  This layer moves all of that ahead of the
event loop:

* :func:`generate_request_stream` draws a whole synthetic workload
  (arrival times, read/write flags, addresses) as NumPy vectors — the
  canonical generator shared by ``drive_workload`` and
  ``synthesize_trace``, so live and replayed streams stay identical;
* :func:`compile_workload` / :func:`compile_trace` translate the whole
  stream through :meth:`AddressMapper.map_batch` into a
  :class:`CompiledTrace` of physical coordinates;
* :func:`schedule_compiled` executes a compiled trace with one *chained*
  arrival event (requests sharing an arrival time submit as one epoch
  batch) and per-request plans precomputed from the batch-mapped
  arrays;
* :func:`solve_compiled` skips the event engine entirely for
  single-phase traces (read-only, or any mix under the write-through
  policy): each disk's FIFO queue is solved analytically with the
  exact same float arithmetic the event engine would perform, so the
  resulting report is identical to the scalar simulation at a fraction
  of the cost;
* :func:`execute_compiled` is the engine-selection seam: analytic
  solver for single-phase traces, the calendar-queue batch-stepped
  executor (:mod:`repro.sim.batchstep`) for mixed traces on an idle
  array, and the general heap otherwise — all bit-identical.

:func:`schedule_compiled_scalar` is the thin wrapper that keeps the old
per-event path alive: the same compiled stream, submitted through the
controller's scalar entry points — the equivalence oracle for tests and
the baseline for ``benchmarks/bench_sim.py``.

The whole pipeline in four lines (doctests here run in ``make
check``):

>>> from repro.core import get_layout
>>> from repro.sim import ArrayController, WorkloadConfig
>>> from repro.sim.compile import compile_workload, schedule_compiled
>>> ctrl = ArrayController(get_layout(9, 3))
>>> trace = compile_workload(ctrl.mapper, WorkloadConfig(seed=1), 200.0)
>>> n = schedule_compiled(ctrl, trace)
>>> ctrl.sim.run(); n == trace.n
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.registry import get_incidence
from ..layouts import AddressMapper
from .controller import ArrayController, _Request
from .disk import DiskIO
from .stats import LatencyStats

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoid cycles)
    from .trace import TraceRecord
    from .workload import WorkloadConfig

__all__ = [
    "CompiledTrace",
    "StreamWindows",
    "ArrayWindows",
    "generate_request_stream",
    "compile_stream",
    "compile_workload",
    "compile_trace",
    "schedule_compiled",
    "schedule_compiled_scalar",
    "solve_compiled",
    "execute_compiled",
]


# ----------------------------------------------------------------------
# Stream generation (the canonical synthetic-workload sampler)
# ----------------------------------------------------------------------


#: Default streaming window (requests per compiled slice).  Large
#: enough to amortize per-window ``map_batch`` overhead, small enough
#: that a window's arrays are a few MB regardless of the horizon.
DEFAULT_WINDOW_SIZE = 65536


class StreamWindows:
    """Seed-deterministic fixed-size windows of a Poisson request stream.

    Iterating yields ``(times, is_read, lbas)`` triples of at most
    ``window_size`` requests each, in arrival order, ending strictly
    below ``duration_ms``.  Concatenating the windows reproduces
    :func:`generate_request_stream` for the same config **bit-for-bit
    at every window size**, which is what lets the streaming executors
    promise byte-identical reports.  That invariance rests on three
    properties:

    * each stream component (interarrival gaps, read flags, addresses)
      draws from its **own** generator, spawned from
      ``SeedSequence(config.seed)`` — so over-drawing gaps near the
      horizon never shifts the flag or address draws;
    * NumPy generators fill arrays element-sequentially from the bit
      stream, so chunked draws of any size concatenate identically;
    * arrival times are a left-fold prefix sum carried across windows
      (``gaps[0] += carry`` before the window-local ``cumsum``), the
      exact float-add association of one whole-stream ``cumsum``.

    Each ``iter()`` builds fresh generators, so one ``StreamWindows``
    can be iterated independently many times (the fleet's per-shard
    pumps each own an iterator).

    Example:
        >>> from repro.sim import WorkloadConfig
        >>> cfg = WorkloadConfig(interarrival_ms=1.0, seed=7)
        >>> whole = generate_request_stream(cfg, 50.0, 24)
        >>> import numpy as np
        >>> chunks = list(StreamWindows(cfg, 50.0, 24, window_size=7))
        >>> all(
        ...     np.array_equal(np.concatenate([c[i] for c in chunks]), whole[i])
        ...     for i in range(3)
        ... )
        True
    """

    def __init__(
        self,
        config: "WorkloadConfig",
        duration_ms: float,
        capacity: int,
        window_size: int = DEFAULT_WINDOW_SIZE,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.config = config
        self.duration_ms = float(duration_ms)
        self.capacity = int(capacity)
        self.window_size = int(window_size)
        ss = np.random.SeedSequence(config.seed)
        self._gaps_ss, self._flags_ss, self._addrs_ss, self._tables_ss = ss.spawn(4)
        self._cdf: np.ndarray | None = None
        self._perm: np.ndarray | None = None
        if config.zipf_theta > 0.0:
            weights = 1.0 / np.power(
                np.arange(1, capacity + 1, dtype=np.float64), config.zipf_theta
            )
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf = cdf
            # Deterministic rank->address shuffle so the hot set is
            # spread over stripes rather than clustered at low
            # addresses.  Drawn from the dedicated tables stream so it
            # is identical no matter how the other streams are chunked.
            self._perm = np.random.default_rng(self._tables_ss).permutation(
                self.capacity
            )

    def __iter__(self):
        cfg = self.config
        rng_gaps = np.random.default_rng(self._gaps_ss)
        rng_flags = np.random.default_rng(self._flags_ss)
        rng_addrs = np.random.default_rng(self._addrs_ss)
        w = self.window_size
        horizon = self.duration_ms
        carry = 0.0
        while True:
            gaps = rng_gaps.exponential(cfg.interarrival_ms, size=w)
            gaps[0] += carry
            times = np.cumsum(gaps)
            carry = float(times[-1])
            m = w
            last = carry >= horizon
            if last:
                m = int(np.searchsorted(times, horizon, side="left"))
                if m == 0:
                    return
                times = times[:m]
            is_read = rng_flags.random(m) < cfg.read_fraction
            if self._cdf is None:
                lbas = rng_addrs.integers(0, self.capacity, size=m, dtype=np.int64)
            else:
                lbas = self._perm[
                    np.searchsorted(self._cdf, rng_addrs.random(m))
                ].astype(np.int64)
            yield times, is_read, lbas
            if last:
                return


class ArrayWindows:
    """Re-iterable fixed-size windows over a materialized stream.

    The explicit-array analogue of :class:`StreamWindows`: iterating
    yields ``(times, is_read, lbas)`` slices of at most ``window_size``
    requests, in order, whose concatenation is the input arrays
    themselves — so serving a materialized stream through the windowed
    executors is byte-identical to :func:`generate_request_stream`'s
    windows when the arrays came from the same config.  This is how
    externally submitted request streams (the service front-end's
    socket chunks) ride the same constant-memory serving path as
    synthetic workloads.

    Raises:
        ValueError: on a non-positive window size, mismatched array
            lengths, or arrival times that are not non-decreasing.
    """

    __slots__ = ("times", "is_read", "lbas", "window_size")

    def __init__(self, times, is_read, lbas, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.times = np.asarray(times, dtype=np.float64)
        self.is_read = np.asarray(is_read, dtype=bool)
        self.lbas = np.ascontiguousarray(lbas, dtype=np.int64)
        if not (len(self.times) == len(self.is_read) == len(self.lbas)):
            raise ValueError(
                "times/is_read/lbas must be the same length, got "
                f"{len(self.times)}/{len(self.is_read)}/{len(self.lbas)}"
            )
        if self.times.size and (self.times[1:] < self.times[:-1]).any():
            raise ValueError("arrival times must be non-decreasing")
        self.window_size = int(window_size)

    def __iter__(self):
        n = self.times.size
        w = self.window_size
        for i in range(0, n, w):
            yield (
                self.times[i : i + w],
                self.is_read[i : i + w],
                self.lbas[i : i + w],
            )


def generate_request_stream(
    config: "WorkloadConfig", duration_ms: float, capacity: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw a whole Poisson request stream as vectors.

    Returns ``(times, is_read, lbas)``: arrival times (ms, ascending,
    strictly below ``duration_ms``), read flags, and logical addresses.
    The stream is the concatenation of :class:`StreamWindows` slices —
    per-component generators spawned from the seed, so the draws are
    identical at every window size and the materialized and streaming
    paths see the same requests.  (The per-component split replaced a
    single shared generator — as with the earlier vectorization, a
    seed's stream differs from prior versions while the distributions
    are unchanged.)

    Example:
        >>> from repro.sim import WorkloadConfig
        >>> cfg = WorkloadConfig(interarrival_ms=1.0, seed=7)
        >>> times, is_read, lbas = generate_request_stream(cfg, 50.0, 24)
        >>> bool((times[:-1] <= times[1:]).all())   # ascending arrivals
        True
        >>> bool(times[-1] < 50.0 and lbas.max() < 24)
        True
    """
    window = max(64, int(duration_ms / config.interarrival_ms * 1.25) + 16)
    parts = list(StreamWindows(config, duration_ms, capacity, window_size=window))
    if not parts:
        return (
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=bool),
            np.zeros(0, dtype=np.int64),
        )
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


# ----------------------------------------------------------------------
# Compilation (one map_batch for the whole stream)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledTrace:
    """A whole request stream, pre-mapped to physical coordinates.

    Attributes:
        times: arrival times (ms, ascending; ties keep stream order).
        is_read: per-request read flag.
        lbas: logical addresses (already wrapped to capacity).
        disks / offsets / stripes: the ``map_batch`` translation —
            ``stripes`` are *global* stripe ids (across iterations).

    Example:
        >>> from repro.core import get_layout, get_mapper
        >>> from repro.sim import WorkloadConfig
        >>> mapper = get_mapper(get_layout(9, 3))
        >>> cfg = WorkloadConfig(read_fraction=1.0, seed=1)
        >>> trace = compile_workload(mapper, cfg, 40.0)
        >>> trace.read_only() and trace.n == len(trace.disks)
        True
    """

    times: np.ndarray
    is_read: np.ndarray
    lbas: np.ndarray
    disks: np.ndarray
    offsets: np.ndarray
    stripes: np.ndarray

    @property
    def n(self) -> int:
        """Number of requests."""
        return len(self.times)

    def read_only(self) -> bool:
        """True when every request is a read (single-phase trace)."""
        return bool(self.is_read.all())


def compile_stream(
    mapper: AddressMapper,
    times: np.ndarray,
    is_read: np.ndarray,
    lbas: np.ndarray,
) -> CompiledTrace:
    """Compile an explicit ``(times, is_read, lbas)`` stream.

    Arrival order is normalized with a stable sort (ties keep stream
    order — exactly the event engine's tie-breaking), and the whole
    address vector is translated with one :meth:`AddressMapper.map_batch`
    call.

    Example:
        >>> import numpy as np
        >>> from repro.core import get_layout, get_mapper
        >>> mapper = get_mapper(get_layout(9, 3))
        >>> trace = compile_stream(
        ...     mapper,
        ...     np.array([0.0, 1.5, 3.0]),
        ...     np.array([True, False, True]),
        ...     np.array([0, 7, 23]),
        ... )
        >>> trace.n, trace.read_only()
        (3, False)
        >>> trace.disks.shape                     # pre-mapped coordinates
        (3,)
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    is_read = np.ascontiguousarray(is_read, dtype=bool)
    lbas = np.ascontiguousarray(lbas, dtype=np.int64)
    if not (len(times) == len(is_read) == len(lbas)):
        raise ValueError("times/is_read/lbas must have equal lengths")
    if len(times) > 1 and bool((np.diff(times) < 0).any()):
        order = np.argsort(times, kind="stable")
        times, is_read, lbas = times[order], is_read[order], lbas[order]
    disks, offsets, stripes = mapper.map_batch(lbas, with_stripes=True)
    return CompiledTrace(
        times=times,
        is_read=is_read,
        lbas=lbas,
        disks=disks,
        offsets=offsets,
        stripes=stripes,
    )


def compile_workload(
    mapper: AddressMapper, config: "WorkloadConfig", duration_ms: float
) -> CompiledTrace:
    """Generate and compile a synthetic workload in one pass.

    Example:
        >>> from repro.core import get_layout, get_mapper
        >>> from repro.sim import WorkloadConfig
        >>> mapper = get_mapper(get_layout(9, 3))
        >>> trace = compile_workload(mapper, WorkloadConfig(seed=3), 100.0)
        >>> trace.n > 0 and len(trace.stripes) == trace.n
        True
    """
    times, is_read, lbas = generate_request_stream(
        config, duration_ms, mapper.capacity
    )
    return compile_stream(mapper, times, is_read, lbas)


def compile_trace(
    mapper: AddressMapper, records: Sequence["TraceRecord"]
) -> CompiledTrace:
    """Compile an explicit trace (addresses wrapped modulo capacity, as
    in :func:`repro.sim.trace.replay_trace`).

    Example:
        >>> from repro.core import get_layout, get_mapper
        >>> from repro.sim import TraceRecord
        >>> mapper = get_mapper(get_layout(9, 3))
        >>> trace = compile_trace(mapper, [
        ...     TraceRecord(time_ms=0.0, op="r", lba=5),
        ...     TraceRecord(time_ms=2.0, op="w", lba=99),  # wraps % capacity
        ... ])
        >>> trace.n, int(trace.lbas[1]) == 99 % mapper.capacity
        (2, True)
    """
    n = len(records)
    times = np.fromiter((r.time_ms for r in records), dtype=np.float64, count=n)
    is_read = np.fromiter((r.op == "r" for r in records), dtype=bool, count=n)
    lbas = np.fromiter((r.lba for r in records), dtype=np.int64, count=n)
    if n:
        lbas %= mapper.capacity
    return compile_stream(mapper, times, is_read, lbas)


# ----------------------------------------------------------------------
# Event-driven execution of a compiled trace
# ----------------------------------------------------------------------


class _ObsSink:
    """Latency-sink adapter for the heap engine's inlined read path:
    appends to the controller's samples list (the raw-list fast path)
    and folds the sample into the metrics recorder at the completion
    event, where ``sim.now`` is the completion time."""

    __slots__ = ("samples", "obs", "shard", "kind", "sim")

    def __init__(self, samples, obs, shard, kind, sim):
        self.samples = samples
        self.obs = obs
        self.shard = shard
        self.kind = kind
        self.sim = sim

    def append(self, lat: float) -> None:
        self.samples.append(lat)
        self.obs.record(self.shard, self.kind, self.sim.now, lat)


class _CompiledRun:
    """Chained-arrival pump: one pending event drives the whole trace.

    Requests are pre-planned from the batch-mapped arrays; at each
    distinct arrival time the pump submits every request of that epoch,
    then re-arms itself for the next epoch.  Submission order and times
    are identical to scheduling one closure per request — the heap just
    never holds more than one arrival event.

    With a ``source`` callable the pump *streams*: whenever the current
    window's arrivals are exhausted it pulls the next
    :class:`CompiledTrace` (``None`` ends the stream) and re-plans it in
    place, so only one window's arrays are live at a time.  Window times
    are stream-relative and monotone across windows, and every window is
    offset by the base clock captured at construction — the same
    ``base + t`` float op as the materialized pump, so absolute times
    agree bit-exactly no matter how the stream is chunked.  An optional
    ``on_window`` callback fires between windows (the streaming runners
    drain latency-sample lists into constant-memory digests there).
    """

    __slots__ = (
        "ctrl",
        "times",
        "single",
        "wfast",
        "plans",
        "writes",
        "n",
        "_i",
        "_read_sink",
        "_write_rec",
        "_planned_failed",
        "_compiled",
        "_base",
        "_source",
        "_on_window",
    )

    def __init__(
        self,
        ctrl: ArrayController,
        compiled: CompiledTrace,
        *,
        source=None,
        on_window=None,
        base: float | None = None,
    ):
        self.ctrl = ctrl
        # Elementwise base + t is the same float op the scalar path's
        # schedule(delay=t) performs, so absolute times agree bit-exactly.
        # Captured once: windows loaded mid-run keep the stream's origin.
        # ``base`` overrides the capture for pumps constructed mid-run
        # whose window times are still relative to the stream's start
        # (the fleet window router).
        self._base = ctrl.sim.now if base is None else base
        self._source = source
        self._on_window = on_window
        self._read_sink: list[float] | None = None
        self._write_rec = None
        self._load(compiled)

    def _load(self, compiled: CompiledTrace) -> None:
        """(Re)plan one compiled window against the *current* failure
        state — for the first window this is construction-time planning;
        for streamed windows it matches the scalar path's fire-time
        planning, since the load happens when the window's first arrival
        is due."""
        ctrl = self.ctrl
        self.times = (self._base + compiled.times).tolist()
        self.n = compiled.n
        self._i = 0
        # Plans are valid for this failure state; if a disk fails after
        # scheduling but before an arrival fires, that request re-plans
        # live (matching the scalar path's fire-time planning).
        self._planned_failed = ctrl.failed_disk
        self._compiled = compiled

        b = ctrl.layout.b
        disks = compiled.disks.tolist()
        offsets = compiled.offsets.tolist()
        is_read = compiled.is_read.tolist()
        # Fast paths: healthy single-IO reads carry just (disk, offset)
        # and healthy read-modify-writes a flat (d, o, pd, po) — no
        # request object, no phase lists.  Everything degraded carries a
        # full (kind, phases) plan.
        self.single: list[tuple[int, int] | None] = [None] * self.n
        self.wfast: list[tuple[int, int, int, int] | None] = [None] * self.n
        self.plans: list[tuple[str, list[list[tuple[int, int, bool]]]] | None] = (
            [None] * self.n
        )
        # Per-write dataplane context: (sid_local, disk, offset, lba).
        self.writes: list[tuple[int, int, int, int] | None] = [None] * self.n

        failed = ctrl.failed_disk
        rmw = ctrl.write_policy == "rmw"
        if failed is None:
            write_idx = [i for i, r in enumerate(is_read) if not r]
            if write_idx:
                wl = compiled.lbas[write_idx]
                wd, wo, ws, wpd, wpo = ctrl.mapper.map_batch_parity(wl)
                for j, i in enumerate(write_idx):
                    d, o = int(wd[j]), int(wo[j])
                    pd, po = int(wpd[j]), int(wpo[j])
                    if rmw:
                        self.wfast[i] = (d, o, pd, po)
                    else:
                        # Write-through: new data + parity in one phase.
                        self.plans[i] = (
                            "write", [[(d, o, True), (pd, po, True)]]
                        )
                    if ctrl.data is not None:
                        self.writes[i] = (
                            int(ws[j]) % b, d, o, int(compiled.lbas[i])
                        )
            for i, r in enumerate(is_read):
                if r:
                    self.single[i] = (disks[i], offsets[i])
        else:
            stripes = compiled.stripes.tolist()
            lbas = compiled.lbas.tolist()
            for i, r in enumerate(is_read):
                d, o, sid = disks[i], offsets[i], stripes[i] % b
                if r:
                    kind, phases = ctrl.request_plan(True, d, o, sid)
                    if kind == "read":
                        self.single[i] = (d, o)
                    else:
                        self.plans[i] = (kind, phases)
                else:
                    self.plans[i] = ctrl.request_plan(False, d, o, sid)
                    if ctrl.data is not None:
                        self.writes[i] = (sid, d, o, lbas[i])

    def schedule(self) -> None:
        """Arm the pump (no-op for an empty trace)."""
        if self.n:
            self.ctrl.sim.at(self.times[0], self._fire)

    def _fire(self) -> None:
        ctrl = self.ctrl
        sim = ctrl.sim
        now = sim.now
        # The outer loop only repeats in the streamed case, when a
        # window boundary splits an arrival epoch (a zero interarrival
        # gap straddling the chunk edge): the next window is pulled and
        # the epoch continues in the same event, preserving the heap's
        # one-pump-event-per-epoch serialization.
        while True:
            times = self.times
            i = self._i
            n = self.n
            # The failure state cannot change while this event runs
            # (fail injections are events of their own), so one
            # stale-plan check covers the whole epoch and the
            # healthy-read fast path inlines submission: one DiskIO, no
            # per-request dispatch.
            if ctrl.failed_disk == self._planned_failed:
                single = self.single
                disks = ctrl.disks
                sink = self._read_sink
                while i < n and times[i] == now:
                    pos = single[i]
                    if pos is not None:
                        if sink is None:
                            sink = ctrl.latency.setdefault(
                                "read", LatencyStats()
                            ).samples
                            if ctrl.obs.enabled:
                                sink = _ObsSink(
                                    sink, ctrl.obs, ctrl.obs_shard, "read", sim
                                )
                            self._read_sink = sink
                        disks[pos[0]].submit(
                            DiskIO(
                                offset=pos[1], is_write=False, latency_sink=sink
                            )
                        )
                    else:
                        self._submit(i, now)
                    i += 1
            else:
                while i < n and times[i] == now:
                    self._replan_live(i, now)
                    i += 1
            self._i = i
            if i < n:
                sim.at(times[i], self._fire)
                return
            if not self._advance():
                return

    def _advance(self) -> bool:
        """Pull the next non-empty window from the source, if any."""
        source = self._source
        if source is None:
            return False
        while True:
            if self._on_window is not None:
                self._on_window()
            nxt = source()
            if nxt is None:
                self._source = None
                return False
            if nxt.n:
                self._load(nxt)
                return True

    def _replan_live(self, i: int, now: float) -> None:
        """Fire-time planning for a request whose compile-time plan went
        stale (a disk failed mid-run) — exactly what the scalar path
        does for every request."""
        ctrl = self.ctrl
        c = self._compiled
        d, o = int(c.disks[i]), int(c.offsets[i])
        sid = int(c.stripes[i]) % ctrl.layout.b
        is_read = bool(c.is_read[i])
        if not is_read and ctrl.data is not None:
            ctrl._apply_write_dataplane(
                sid, d, o, ctrl._default_payload(int(c.lbas[i]))
            )
        kind, phases = ctrl.request_plan(is_read, d, o, sid)
        req = _Request(kind=kind, start=now, on_done=None, phases=phases)
        ctrl._issue_phase(req)

    def _submit(self, i: int, now: float) -> None:
        """Submit a non-single-IO request (writes and degraded plans);
        healthy single-IO reads are inlined in :meth:`_fire`."""
        ctrl = self.ctrl
        winfo = self.writes[i]
        if winfo is not None:
            sid, d, off, lba = winfo
            ctrl._apply_write_dataplane(
                sid, d, off, ctrl._default_payload(lba)
            )
        w = self.wfast[i]
        if w is not None:
            self._submit_write_fast(w, now)
            return
        kind, phases = self.plans[i]
        req = _Request(kind=kind, start=now, on_done=None, phases=phases)
        ctrl._issue_phase(req)

    def _submit_write_fast(
        self, w: tuple[int, int, int, int], start: float
    ) -> None:
        """The healthy read-modify-write, inlined: read old data and
        parity, then write both — identical IO order and timing to the
        generic ``_Request`` two-phase plan, one closure per request
        instead of a request object plus one closure per phase."""
        d, o, pd, po = w
        disks = self.ctrl.disks
        data_disk = disks[d]
        parity_disk = disks[pd]
        rec = self._write_rec
        if rec is None:
            ctrl = self.ctrl
            rec = ctrl.latency.setdefault("write", LatencyStats()).record
            if ctrl.obs.enabled:
                base, obs, shard, sim = rec, ctrl.obs, ctrl.obs_shard, ctrl.sim

                def rec(lat, _b=base, _o=obs, _s=shard, _sim=sim):
                    _b(lat)
                    _o.record(_s, "write", _sim.now, lat)

            self._write_rec = rec
        remaining = 2
        writing = False

        def done(when: float) -> None:
            nonlocal remaining, writing
            remaining -= 1
            if remaining:
                return
            if not writing:
                if data_disk.failed or parity_disk.failed:
                    # Failure landed between the read and write phases:
                    # the request is lost, exactly like the generic
                    # path's stale-plan drop in _issue_phase.
                    return
                writing = True
                remaining = 2
                data_disk.submit(DiskIO(offset=o, is_write=True, on_complete=done))
                parity_disk.submit(
                    DiskIO(offset=po, is_write=True, on_complete=done)
                )
            else:
                rec(when - start)

        data_disk.submit(DiskIO(offset=o, is_write=False, on_complete=done))
        parity_disk.submit(DiskIO(offset=po, is_write=False, on_complete=done))


def schedule_compiled(ctrl: ArrayController, compiled: CompiledTrace) -> int:
    """Schedule a compiled trace for event-driven execution (batched
    path).  Returns the request count; run ``ctrl.sim.run()`` to
    execute.

    Example:
        >>> from repro.core import get_layout
        >>> from repro.sim import ArrayController, WorkloadConfig
        >>> ctrl = ArrayController(get_layout(9, 3))
        >>> trace = compile_workload(ctrl.mapper, WorkloadConfig(seed=2), 50.0)
        >>> schedule_compiled(ctrl, trace) == trace.n
        True
        >>> ctrl.sim.run()
        >>> sum(st.count for st in ctrl.latency.values()) == trace.n
        True
    """
    ctrl.last_engine = "heap"
    ctrl.obs.set_engine(ctrl.obs_shard, "heap")
    _CompiledRun(ctrl, compiled).schedule()
    return compiled.n


def schedule_compiled_scalar(
    ctrl: ArrayController, compiled: CompiledTrace
) -> int:
    """Schedule a compiled trace through the scalar per-event path.

    One closure per request, translated and planned when it fires —
    the pre-PR pipeline, kept as the equivalence baseline.  Returns the
    request count.

    Example:
        >>> from repro.core import get_layout
        >>> from repro.sim import ArrayController, WorkloadConfig
        >>> cfg = WorkloadConfig(seed=2)
        >>> a, b = (ArrayController(get_layout(9, 3)) for _ in range(2))
        >>> trace = compile_workload(a.mapper, cfg, 50.0)
        >>> _ = schedule_compiled(a, trace); a.sim.run()
        >>> _ = schedule_compiled_scalar(b, trace); b.sim.run()
        >>> a.sim.now == b.sim.now          # identical simulations
        True
    """
    sim = ctrl.sim
    for t, r, lba in zip(
        compiled.times.tolist(), compiled.is_read.tolist(), compiled.lbas.tolist()
    ):
        if r:
            sim.schedule(t, lambda lba=lba: ctrl.submit_read(lba))
        else:
            sim.schedule(t, lambda lba=lba: ctrl.submit_write(lba))
    return compiled.n


# ----------------------------------------------------------------------
# Analytic execution (single-phase traces, no event engine)
# ----------------------------------------------------------------------


def solve_compiled(ctrl: ArrayController, compiled: CompiledTrace) -> int:
    """Execute a single-phase compiled trace analytically.

    Single-phase requests never feed back into the arrival process
    (open loop) and fan all their IOs out at arrival time, so each
    disk's FIFO queue is an independent recurrence ``completion =
    max(arrival, prev_completion) + service`` over a service vector
    that is computable up front.  This routine evaluates that
    recurrence directly — same float operations, same order as the
    event engine — then back-fills the controller's disk counters,
    latency samples, and clock, so reports built on top are
    indistinguishable from an event-driven run.

    Three trace shapes are single-phase: read-only traces (healthy or
    degraded), and — under ``write_policy="write_through"`` — any mixed
    trace, healthy or single-failure degraded (a write-through write is
    one parallel data+parity write phase; its degraded variants are one
    IO).  The classic read-modify-write policy makes writes two-phase
    and genuinely needs an event engine
    (:func:`repro.sim.batchstep.step_compiled`).

    Example:
        >>> from repro.core import get_layout
        >>> from repro.sim import ArrayController, WorkloadConfig
        >>> ctrl = ArrayController(get_layout(9, 3))
        >>> cfg = WorkloadConfig(read_fraction=1.0, seed=5)  # reads only
        >>> trace = compile_workload(ctrl.mapper, cfg, 50.0)
        >>> solve_compiled(ctrl, trace) == trace.n
        True
        >>> ctrl.sim.events_processed                # no event loop at all
        0

    Raises:
        ValueError: if the trace contains writes under the default
            read-modify-write policy (multi-phase requests genuinely
            need an event engine).
        RuntimeError: if the simulator already has pending events (the
            solver models a dedicated, otherwise-idle array).
    """
    has_writes = not compiled.read_only()
    if has_writes and ctrl.write_policy != "write_through":
        raise ValueError(
            "solve_compiled handles read-only traces under the "
            "read-modify-write policy (write-through traces are "
            "single-phase and always solvable)"
        )
    if ctrl.sim.pending():
        raise RuntimeError("solve_compiled requires an idle simulator")
    ctrl.last_engine = "solver"
    ctrl.obs.set_engine(ctrl.obs_shard, "solver")
    n = compiled.n
    if n == 0:
        return 0
    sim = ctrl.sim
    times = sim.now + compiled.times
    failed = ctrl.failed_disk
    disks = compiled.disks
    offsets = compiled.offsets

    # --- fan each logical request out to its disk IOs (request order;
    # data before parity within a write, unit order within a degraded
    # stripe — the submission order of the event-driven path).  The
    # per-request kind codes drive latency bucketing at the end.
    kind_code = None  # None = every request is a plain read
    if not has_writes and failed is None:
        io_req = np.arange(n, dtype=np.int64)
        io_disk = disks
        io_off = offsets
        io_write = None
        block_start = io_req  # request i's IOs start at position i
    else:
        counts = np.ones(n, dtype=np.int64)
        kind_code = np.zeros(n, dtype=np.int8)  # 0 read / 1 degraded_read
        #                                         2 write / 3 degraded_write
        if has_writes:
            widx = np.flatnonzero(~compiled.is_read)
            wd, wo, ws, wpd, wpo = ctrl.mapper.map_batch_parity(
                compiled.lbas[widx]
            )
            if failed is None:
                wnormal = np.ones(len(widx), dtype=bool)
                wdataf = wparityf = np.zeros(len(widx), dtype=bool)
            else:
                wdataf = wd == failed
                wparityf = wpd == failed
                wnormal = ~(wdataf | wparityf)
            counts[widx[wnormal]] = 2
            kind_code[widx[wnormal]] = 2
            kind_code[widx[~wnormal]] = 3
            if ctrl.data is not None:
                # Content semantics in request order, exactly as the
                # event engine applies them at each write's arrival.
                b = ctrl.layout.b
                wlbas = compiled.lbas[widx].tolist()
                for j in range(len(widx)):
                    ctrl._apply_write_dataplane(
                        int(ws[j]) % b,
                        int(wd[j]),
                        int(wo[j]),
                        ctrl._default_payload(wlbas[j]),
                    )
        deg = None
        if failed is not None:
            layout = ctrl.layout
            inc = get_incidence(layout)
            lengths = inc.stripe_lengths()
            sids = compiled.stripes % layout.b
            deg = compiled.is_read & (disks == failed)
            counts[deg] = lengths[sids[deg]] - 1
            kind_code[deg] = 1
        block_start = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=block_start[1:])
        total = int(counts.sum())
        io_req = np.repeat(np.arange(n, dtype=np.int64), counts)
        io_disk = np.empty(total, dtype=np.int64)
        io_off = np.empty(total, dtype=np.int64)
        io_write = np.zeros(total, dtype=bool)
        # Healthy (or surviving-disk) reads: one IO in place.
        hr = compiled.is_read if deg is None else compiled.is_read & ~deg
        io_disk[block_start[hr]] = disks[hr]
        io_off[block_start[hr]] = offsets[hr]
        if has_writes:
            bs = block_start[widx[wnormal]]
            io_disk[bs] = wd[wnormal]
            io_off[bs] = wo[wnormal]
            io_disk[bs + 1] = wpd[wnormal]
            io_off[bs + 1] = wpo[wnormal]
            io_write[bs] = True
            io_write[bs + 1] = True
            bs = block_start[widx[wdataf]]
            io_disk[bs] = wpd[wdataf]
            io_off[bs] = wpo[wdataf]
            io_write[bs] = True
            bs = block_start[widx[wparityf]]
            io_disk[bs] = wd[wparityf]
            io_off[bs] = wo[wparityf]
            io_write[bs] = True
        if deg is not None and deg.any():
            dsids = sids[deg]
            row_start = inc.indptr[dsids]
            row_len = lengths[dsids]
            m = int(row_len.sum())
            run_end = np.cumsum(row_len)
            intra = np.arange(m, dtype=np.int64) - np.repeat(
                run_end - row_len, row_len
            )
            upos = np.repeat(row_start, row_len) + intra
            udisks = inc.disks[upos]
            uoffs = inc.offsets[upos]
            keep = udisks != failed
            klen = row_len - 1
            kept = int(klen.sum())
            kend = np.cumsum(klen)
            kintra = np.arange(kept, dtype=np.int64) - np.repeat(
                kend - klen, klen
            )
            kpos = np.repeat(block_start[deg], klen) + kintra
            io_disk[kpos] = udisks[keep]
            io_off[kpos] = uoffs[keep]

    # --- solve each disk's FIFO queue.
    io_time = times[io_req]
    completion = np.empty(len(io_disk), dtype=np.float64)
    p = ctrl.params
    rot, xfer = p.rotational_latency_ms, p.transfer_ms_per_unit
    avg, seqs = p.average_seek_ms, p.sequential_seek_ms
    order = np.argsort(io_disk, kind="stable")
    sorted_disk = io_disk[order]
    group_bounds = np.flatnonzero(np.diff(sorted_disk)) + 1
    for grp in np.split(order, group_bounds):
        disk_obj = ctrl.disks[int(io_disk[grp[0]])]
        offs = io_off[grp]
        # Per-IO service time, mirroring DiskParameters.service_time
        # element for element ((seek + rotation) + transfer).
        seeks = np.empty(len(grp), dtype=np.float64)
        last = disk_obj._last_offset
        seeks[0] = (
            seqs if last is not None and abs(int(offs[0]) - last) <= 1 else avg
        )
        seeks[1:] = np.where(np.abs(np.diff(offs)) <= 1, seqs, avg)
        service = (seeks + rot) + xfer
        arrivals = io_time[grp].tolist()
        comp = []
        busy = disk_obj.busy_time
        delay = disk_obj.total_queue_delay
        prev = -np.inf
        for a, s in zip(arrivals, service.tolist()):
            start = a if a > prev else prev
            delay += start - a
            busy += s
            prev = start + s
            comp.append(prev)
        completion[grp] = comp
        disk_obj.busy_time = busy
        disk_obj.total_queue_delay = delay
        if io_write is None:
            disk_obj.completed_reads += len(grp)
        else:
            nw = int(io_write[grp].sum())
            disk_obj.completed_writes += nw
            disk_obj.completed_reads += len(grp) - nw
        disk_obj._last_offset = int(offs[-1])

    # --- per-request completion (fan-in = max over the request's IOs)
    # and latency samples, recorded in completion order like the event
    # engine would.
    if len(io_disk) == n:
        req_completion = completion
    else:
        req_completion = np.maximum.reduceat(completion, block_start)
    latencies = req_completion - times
    done_order = np.argsort(req_completion, kind="stable")
    obs = ctrl.obs if ctrl.obs.enabled else None
    if kind_code is None:
        lat_done = latencies[done_order]
        ctrl.latency.setdefault("read", LatencyStats()).samples.extend(
            lat_done.tolist()
        )
        if obs is not None:
            obs.feed(ctrl.obs_shard, "read", req_completion[done_order], lat_done)
    else:
        kinds_done = kind_code[done_order]
        lat_done = latencies[done_order]
        comp_done = req_completion[done_order] if obs is not None else None
        for code, name in enumerate(
            ("read", "degraded_read", "write", "degraded_write")
        ):
            mask = kinds_done == code
            sel = lat_done[mask]
            if len(sel):
                ctrl.latency.setdefault(name, LatencyStats()).samples.extend(
                    sel.tolist()
                )
                if obs is not None:
                    obs.feed(ctrl.obs_shard, name, comp_done[mask], sel)
    sim.now = float(req_completion.max())
    return n


# ----------------------------------------------------------------------
# Engine selection (the compile-then-execute seam)
# ----------------------------------------------------------------------


def execute_compiled(ctrl: ArrayController, compiled: CompiledTrace) -> int:
    """Run a compiled trace through the fastest engine that is exact.

    The selection gate, in order:

    1. a busy simulator (timers armed, rebuild in flight, another
       stream scheduled) → the general event heap, which is the only
       engine that can interleave with foreign events;
    2. a single-phase trace — read-only, or any mix under
       ``write_policy="write_through"`` → the analytic queue solver
       (:func:`solve_compiled`, no event stepping at all);
    3. otherwise → the calendar-queue batch-stepped executor
       (:func:`repro.sim.batchstep.step_compiled`).

    All three engines produce report-identical results — same clock,
    same per-disk counters and float accumulators, same latency-sample
    multisets and summaries (the batch-stepped executor's eager tier
    may order samples at *exact* completion-time ties by submission
    instead of event-seq, which leaves every summary statistic equal
    and the mean within float re-association; see
    :mod:`repro.sim.batchstep`) — so callers choose purely on speed.
    Returns the request count; the trace is fully executed on return.

    Example:
        >>> from repro.core import get_layout
        >>> from repro.sim import ArrayController, WorkloadConfig
        >>> ctrl = ArrayController(get_layout(9, 3))
        >>> trace = compile_workload(ctrl.mapper, WorkloadConfig(seed=4), 80.0)
        >>> execute_compiled(ctrl, trace) == trace.n
        True
        >>> ctrl.sim.events_processed       # mixed trace, bucketed engine
        0
    """
    sim = ctrl.sim
    if sim.pending():
        n = schedule_compiled(ctrl, compiled)
        sim.run()
        return n
    if compiled.read_only() or ctrl.write_policy == "write_through":
        return solve_compiled(ctrl, compiled)
    p = ctrl.params
    min_service = (
        min(p.sequential_seek_ms, p.average_seek_ms)
        + p.rotational_latency_ms
        + p.transfer_ms_per_unit
    )
    if min_service <= 0.0:
        # A degenerate zero-service model has no usable bucket width;
        # the heap handles it.
        n = schedule_compiled(ctrl, compiled)
        sim.run()
        return n
    from .batchstep import step_compiled

    return step_compiled(ctrl, compiled)
