"""Calendar-queue batch-stepped executor for compiled mixed traces.

The binary heap in :class:`repro.sim.events.Simulator` pays one
``heappush`` + ``heappop`` (plus a ``DiskIO`` object and, for writes, a
closure) per disk event.  For a compiled trace on an otherwise-idle
array none of that generality is needed: every event is either a
request arrival (known up front, sorted) or a disk completion (created
while stepping).  :func:`step_compiled` replaces the heap with a
calendar queue — fixed-width time buckets over the horizon — and
retires whole buckets at a time: collect a bucket's completions, sort
once, then merge-walk them against the arrival stream.

The RMW chained-arrival dependency (a small write's phase-2 IOs exist
only once both phase-1 reads finish) is handled naturally: the
follow-on IOs are simply appended to the bucket their parent's
completion lands in.

Equality contract
-----------------
The executor replays the heap's exact serialization.  Each event that
the heap *would* have pushed is assigned the same tie-breaking sequence
number, in the same order (submission order within an epoch, the
arrival pump re-armed after each epoch), and buckets are processed in
``(time, seq)`` order — so equal-time events fire in schedule order,
float accumulation per disk happens in the same order with the same
operations, and the resulting report is bit-identical to
``schedule_compiled`` + ``sim.run()`` (property-tested in
``tests/sim/test_batchstep.py``).

Bucket widths are snapped to a power of two
(:func:`repro.sim.events.calendar_bucket_width`) so bucket indexing is
exact; an event landing exactly on a bucket boundary belongs to the
next bucket everywhere.  When a caller forces a width larger than the
minimum service time, completions can land in the *current* bucket —
those are insertion-sorted into the live bucket, which keeps the order
contract (new events always sort after the one being processed, since
service times are positive).

Like :func:`repro.sim.compile.solve_compiled`, the executor bypasses
``Simulator`` entirely: ``sim.events_processed`` stays untouched, which
the tests use to prove which engine ran.

Eager fast tier
---------------
For the common benched shape — healthy array, read-modify-write policy,
no dataplane, default bucket width — the executor first tries an eager
queue-resolution pass (:func:`_step_eager`).  Because each disk queue
is FIFO, an IO's completion time is fully determined the moment it is
submitted: ``max(submit_time, previous completion on that disk) +
service``.  The only submissions whose *times* are not known up front
are RMW phase-2 writes (gated on the max of the two phase-1 read
completions), so the pass walks the arrival stream merged with a small
min-heap of pending phase-2 submission times — two orders of magnitude
fewer heap operations than one per disk event.  Whenever two
submissions from different sources collide on the exact same float
timestamp the serialization is ambiguous; the pass detects that before
mutating any controller state and returns ``None``, and
:func:`step_compiled` falls back to the exact calendar engine.  The
one relaxation: latency samples are emitted per kind in completion-time
order with ties broken by submission order (the heap breaks ties by
event sequence number), which leaves every report field identical
except that ``mean`` may differ by float-association error well inside
the documented 1e-12 contract.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from .stats import LatencyStats

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoid cycles)
    from .compile import CompiledTrace
    from .controller import ArrayController

__all__ = ["step_compiled"]

# Completion-event action codes (element 2 of an event tuple
# ``(time, seq, action, disk, request)``).
_READ_FAST = 0  # healthy/degraded single-IO read: append to the sink
_RMW_PHASE1 = 1  # RMW old-data/old-parity read: gate the write phase
_RMW_WRITE = 2  # RMW new-data/new-parity write: gate the record
_GENERIC_READ = 3  # phase IO of a generic (kind, phases) plan
_GENERIC_WRITE = 4

# Sentinel standing in for Disk._last_offset is None inside the eager
# tier's int-only adjacency test (real offsets are small non-negatives,
# so the difference can never land in [-1, 1]).
_NO_OFFSET = -(1 << 60)


def _step_eager(
    ctrl: "ArrayController",
    compiled: "CompiledTrace",
    seq_s: float,
    avg_s: float,
) -> int | None:
    """Eagerly resolve a healthy-RMW trace without per-event stepping.

    Returns the request count on success, or ``None`` if an exact
    timestamp tie between submissions from different sources makes the
    heap's serialization ambiguous — in that case no controller state
    has been touched and the caller reruns on the calendar engine.
    """
    sim = ctrl.sim
    n = compiled.n
    base = sim.now
    # Elementwise base + t matches the heap pump's schedule(delay=t).
    atimes = (base + compiled.times).tolist()
    is_read = compiled.is_read
    is_read_l = is_read.tolist()
    rdisks = compiled.disks.tolist()
    roffs = compiled.offsets.tolist()

    widx = np.flatnonzero(~is_read)
    nw = widx.shape[0]
    if nw:
        wdd, wod, _ws, wpdd, wpod = ctrl.mapper.map_batch_parity(
            compiled.lbas[widx]
        )
        wd = wdd.tolist()
        wo = wod.tolist()
        wpd = wpdd.tolist()
        wpo = wpod.tolist()
        wtimes = [atimes[i] for i in widx.tolist()]
    else:
        wd = wo = wpd = wpo = wtimes = []

    disks = ctrl.disks
    v = len(disks)
    prevc = [float("-inf")] * v  # completion time of the disk's last IO
    dlast = [
        _NO_OFFSET if d._last_offset is None else d._last_offset
        for d in disks
    ]
    dbusyt = [d.busy_time for d in disks]
    ddelay = [d.total_queue_delay for d in disks]
    dreads = [0] * v
    dwrites = [0] * v

    rc: list[float] = []  # read completion times, submission order
    rl: list[float] = []  # read latencies, same order
    wc: list[float] = []  # write (phase-2 max) completion times
    wl: list[float] = []
    rc_app = rc.append
    rl_app = rl.append
    wc_app = wc.append
    wl_app = wl.append

    # Pending phase-2 submissions: (time, gating start, write #).
    pq: list[tuple[float, float, int]] = []
    inf = float("inf")
    maxc = -inf
    ai = 0
    wj = 0
    while True:
        # --- drain arrivals strictly before the next phase-2 time.
        limit = pq[0][0] if pq else inf
        while ai < n:
            t = atimes[ai]
            if t >= limit:
                if t > limit:
                    break
                # Arrival and pending phase-2 at the same instant: the
                # heap's order is ambiguous here, but it only matters
                # if they touch a common disk — disjoint submissions
                # commute, so process the arrival first.
                if is_read_l[ai]:
                    aset = (rdisks[ai],)
                else:
                    aset = (wd[wj], wpd[wj])
                for tk, _gk, k in pq:
                    if tk == limit and (wd[k] in aset or wpd[k] in aset):
                        return None
            r = ai
            ai += 1
            if is_read_l[r]:
                d = rdisks[r]
                off = roffs[r]
                p = prevc[d]
                if p > t:
                    ddelay[d] += p - t
                else:
                    p = t
                s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
                dlast[d] = off
                dbusyt[d] += s
                c = p + s
                prevc[d] = c
                dreads[d] += 1
                if c > maxc:
                    maxc = c
                rc_app(c)
                rl_app(c - t)
            else:
                # RMW phase 1: read old data, then old parity.
                j = wj
                wj += 1
                d = wd[j]
                off = wo[j]
                p = prevc[d]
                if p > t:
                    ddelay[d] += p - t
                else:
                    p = t
                s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
                dlast[d] = off
                dbusyt[d] += s
                g1 = p
                c1 = p + s
                prevc[d] = c1
                dreads[d] += 1
                d = wpd[j]
                off = wpo[j]
                p = prevc[d]
                if p > t:
                    ddelay[d] += p - t
                else:
                    p = t
                s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
                dlast[d] = off
                dbusyt[d] += s
                c2 = p + s
                prevc[d] = c2
                dreads[d] += 1
                # The phase-2 submission fires inside the completion
                # event of whichever phase-1 read finishes last; that
                # event's heap sequence number was assigned when the
                # read's *service started* (seqs grow chronologically),
                # so the start time `g` recovers the heap's order
                # between phase-2 submissions tied on time.
                if c1 > c2:
                    tw = c1
                    g = g1
                elif c2 > c1:
                    tw = c2
                    g = p
                else:
                    tw = c1
                    g = g1 if g1 > p else p
                heappush(pq, (tw, g, j))
                if tw < limit:
                    limit = tw
        if not pq:
            break  # arrivals exhausted with nothing in flight
        # --- retire pending phase-2 submissions up to the next arrival.
        na = atimes[ai] if ai < n else inf
        while True:
            tw, g, j = heappop(pq)
            if pq and pq[0][0] == tw:
                # More phase-2 at the same instant.  Distinct gating
                # start times order them exactly (the heap pops by
                # (time, seq) and `g` tracks seq order); ties on both
                # are fine only while the writes touch pairwise-disjoint
                # disk pairs, since disjoint submissions commute.
                used = {wd[j], wpd[j]}
                for tk, gk, k in pq:
                    if tk == tw and gk == g:
                        a_, b_ = wd[k], wpd[k]
                        if a_ in used or b_ in used:
                            return None
                        used.add(a_)
                        used.add(b_)
            # Phase 2: write new data, then new parity.
            d = wd[j]
            off = wo[j]
            p = prevc[d]
            if p > tw:
                ddelay[d] += p - tw
            else:
                p = tw
            s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
            dlast[d] = off
            dbusyt[d] += s
            c3 = p + s
            prevc[d] = c3
            dwrites[d] += 1
            d = wpd[j]
            off = wpo[j]
            p = prevc[d]
            if p > tw:
                ddelay[d] += p - tw
            else:
                p = tw
            s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
            dlast[d] = off
            dbusyt[d] += s
            c4 = p + s
            prevc[d] = c4
            dwrites[d] += 1
            cw = c3 if c3 > c4 else c4
            if cw > maxc:
                maxc = cw
            wc_app(cw)
            wl_app(cw - wtimes[j])
            if not pq:
                break
            t2 = pq[0][0]
            if t2 >= na:
                # t2 == na re-enters the arrival drain, which settles
                # the arrival/phase-2 tie with the disjointness check.
                break
        if ai >= n and not pq:
            break

    # --- success: write the accumulated state back.
    for i in range(v):
        disk = disks[i]
        disk.busy_time = dbusyt[i]
        disk.total_queue_delay = ddelay[i]
        disk.completed_reads += dreads[i]
        disk.completed_writes += dwrites[i]
        lo = dlast[i]
        disk._last_offset = None if lo == _NO_OFFSET else lo
    # Sinks are created in first-occurrence (stream) order, matching the
    # heap, and samples land per kind in completion-time order (stable
    # on submission order for exact ties).
    nr = n - nw
    if nr and nw:
        if int(np.argmax(is_read)) < int(widx[0]):
            kinds = (("read", rc, rl), ("write", wc, wl))
        else:
            kinds = (("write", wc, wl), ("read", rc, rl))
    elif nr:
        kinds = (("read", rc, rl),)
    else:
        kinds = (("write", wc, wl),)
    latency = ctrl.latency
    obs = ctrl.obs if ctrl.obs.enabled else None
    for kind, cs, ls in kinds:
        carr = np.asarray(cs)
        order = np.argsort(carr, kind="stable")
        sink = latency.setdefault(kind, LatencyStats()).samples
        lat_sorted = np.asarray(ls)[order]
        sink.extend(lat_sorted.tolist())
        if obs is not None:
            obs.feed(ctrl.obs_shard, kind, carr[order], lat_sorted)
    sim.now = maxc
    return n


class _EagerCore:
    """Generalized eager queue resolver with window carry-over.

    The same idea as :func:`_step_eager` — each disk queue is FIFO, so
    an IO's completion is known at submission — extended two ways:

    * **any frozen failure state**: requests are classified from the
      same :class:`repro.sim.compile._CompiledRun` plans the heap
      executor uses, so degraded reconstruction reads (one phase, many
      IOs) and degraded/normal writes (multi-phase plans) resolve
      eagerly too, not just the healthy RMW shape;
    * **feed/drain/finish protocol**: the core holds its per-disk
      accumulators, pending-phase heap, and per-kind sample buffers
      *across* windows and writes nothing back to the controller until
      :meth:`finish` — so the streaming executor can feed one compiled
      window at a time in constant memory, and a tie abort anywhere
      leaves the controller untouched for an exact replay.

    Heap entries are self-contained ``(time, g, cnt, kind, arrival,
    phases, phase_idx)`` tuples (window arrays are replaced between
    feeds, so entries cannot index into them); ``g`` is the service
    start of the phase's last-finishing IO, which recovers the heap's
    event-sequence order between same-time submissions, and ``cnt`` is
    a monotone push counter replaying the heap's final tiebreak.  The
    ambiguity rules are :func:`_step_eager`'s, generalized to arbitrary
    phase IO sets: an arrival tied with a pending phase, or two pending
    phases tied on ``(time, g)``, abort unless their disk sets are
    disjoint (disjoint submissions commute).

    Restrictions: read-modify-write policy, no data plane (the gate in
    :func:`step_compiled` and the streaming executor enforce both).
    """

    __slots__ = (
        "ctrl",
        "seq_s",
        "avg_s",
        "prevc",
        "dlast",
        "dbusyt",
        "ddelay",
        "dreads",
        "dwrites",
        "pq",
        "maxc",
        "n",
        "_cnt",
        "_kinds",
    )

    _WRITE_KIND = "write"

    def __init__(self, ctrl: "ArrayController", seq_s: float, avg_s: float):
        disks = ctrl.disks
        v = len(disks)
        self.ctrl = ctrl
        self.seq_s = seq_s
        self.avg_s = avg_s
        self.prevc = [float("-inf")] * v
        self.dlast = [
            _NO_OFFSET if d._last_offset is None else d._last_offset
            for d in disks
        ]
        self.dbusyt = [d.busy_time for d in disks]
        self.ddelay = [d.total_queue_delay for d in disks]
        self.dreads = [0] * v
        self.dwrites = [0] * v
        # Pending next-phase submissions:
        # (time, g, cnt, kind, arrival, phases, phase_idx).
        self.pq: list[tuple] = []
        self.maxc = float("-inf")
        self.n = 0
        self._cnt = 0
        # kind -> (completions, latencies), in emission-source order.
        self._kinds: dict[str, tuple[list[float], list[float]]] = {}

    def _buf(self, kind: str) -> tuple[list[float], list[float]]:
        b = self._kinds.get(kind)
        if b is None:
            b = self._kinds[kind] = ([], [])
        return b

    def _run_phase(self, phase, t: float) -> tuple[float, float]:
        """Resolve one phase's IOs (submitted together at ``t``, plan
        order) against the eager FIFO queues.  Returns the phase
        completion (max IO completion) and its gating start ``g`` (the
        start of the last-finishing IO; completion ties take the max
        start — exactly :func:`_step_eager`'s phase-1 recovery)."""
        prevc = self.prevc
        dlast = self.dlast
        dbusyt = self.dbusyt
        ddelay = self.ddelay
        dreads = self.dreads
        dwrites = self.dwrites
        seq_s = self.seq_s
        avg_s = self.avg_s
        best_c = float("-inf")
        best_g = float("-inf")
        for d, off, is_w in phase:
            p = prevc[d]
            if p > t:
                ddelay[d] += p - t
            else:
                p = t
            s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
            dlast[d] = off
            dbusyt[d] += s
            c = p + s
            prevc[d] = c
            if is_w:
                dwrites[d] += 1
            else:
                dreads[d] += 1
            if c > best_c:
                best_c = c
                best_g = p
            elif c == best_c and p > best_g:
                best_g = p
        return best_c, best_g

    def _retire_until(self, na: float) -> bool:
        """Retire pending phases strictly before ``na`` (the next
        arrival, or +inf at finish).  False on an order-ambiguous tie."""
        pq = self.pq
        while pq and pq[0][0] < na:
            tw, g, _cnt, kind, at, phases, pidx = heappop(pq)
            if pq and pq[0][0] == tw:
                # Same-instant pending phases: distinct gating starts
                # order them exactly (g tracks event-seq order); ties on
                # both are fine only while the phases touch pairwise
                # disjoint disk sets.
                used = {d for d, _o, _w in phases[pidx]}
                for item in pq:
                    if item[0] == tw and item[1] == g:
                        for d, _o, _w in item[5][item[6]]:
                            if d in used:
                                return False
                            used.add(d)
            c, g2 = self._run_phase(phases[pidx], tw)
            pidx += 1
            if pidx < len(phases):
                self._cnt += 1
                heappush(pq, (c, g2, self._cnt, kind, at, phases, pidx))
            else:
                if c > self.maxc:
                    self.maxc = c
                cs, ls = self._buf(kind)
                cs.append(c)
                ls.append(c - at)
        return True

    def feed(self, run) -> bool:
        """Consume one planned window (a :class:`_CompiledRun`),
        interleaving its arrivals with pending phase submissions.
        Pending phases whose time lands past the window's last arrival
        stay queued for the next feed.  Returns False on an ambiguous
        tie (controller state untouched; the caller replays exactly)."""
        atimes = run.times
        single = run.single
        wfast = run.wfast
        plans = run.plans
        n = run.n
        pq = self.pq
        inf = float("inf")
        prevc = self.prevc
        dlast = self.dlast
        dbusyt = self.dbusyt
        ddelay = self.ddelay
        dreads = self.dreads
        seq_s = self.seq_s
        avg_s = self.avg_s
        rbuf = self._buf("read")
        rc_app = rbuf[0].append
        rl_app = rbuf[1].append
        self.n += n
        ai = 0
        while True:
            limit = pq[0][0] if pq else inf
            while ai < n:
                t = atimes[ai]
                if t >= limit:
                    if t > limit:
                        break
                    # Arrival and pending phase at the same instant: the
                    # heap's order is ambiguous, but it only matters if
                    # they touch a common disk — disjoint submissions
                    # commute, so process the arrival first.
                    pos = single[ai]
                    if pos is not None:
                        aset = (pos[0],)
                    else:
                        w = wfast[ai]
                        if w is not None:
                            aset = (w[0], w[2])
                        else:
                            aset = tuple(
                                d for d, _o, _w in plans[ai][1][0]
                            )
                    for item in pq:
                        if item[0] == limit and any(
                            d in aset for d, _o, _w in item[5][item[6]]
                        ):
                            return False
                r = ai
                ai += 1
                pos = single[r]
                if pos is not None:
                    # Single-IO read (healthy, or surviving-disk
                    # degraded): resolves entirely at arrival.
                    d, off = pos
                    p = prevc[d]
                    if p > t:
                        ddelay[d] += p - t
                    else:
                        p = t
                    s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
                    dlast[d] = off
                    dbusyt[d] += s
                    c = p + s
                    prevc[d] = c
                    dreads[d] += 1
                    if c > self.maxc:
                        self.maxc = c
                    rc_app(c)
                    rl_app(c - t)
                    continue
                w = wfast[r]
                if w is not None:
                    # Healthy RMW phase 1: read old data, then parity.
                    d, off, pd, po = w
                    p = prevc[d]
                    if p > t:
                        ddelay[d] += p - t
                    else:
                        p = t
                    s = seq_s if -1 <= off - dlast[d] <= 1 else avg_s
                    dlast[d] = off
                    dbusyt[d] += s
                    g1 = p
                    c1 = p + s
                    prevc[d] = c1
                    dreads[d] += 1
                    p = prevc[pd]
                    if p > t:
                        ddelay[pd] += p - t
                    else:
                        p = t
                    s = seq_s if -1 <= po - dlast[pd] <= 1 else avg_s
                    dlast[pd] = po
                    dbusyt[pd] += s
                    c2 = p + s
                    prevc[pd] = c2
                    dreads[pd] += 1
                    if c1 > c2:
                        tw = c1
                        g = g1
                    elif c2 > c1:
                        tw = c2
                        g = p
                    else:
                        tw = c1
                        g = g1 if g1 > p else p
                    self._cnt += 1
                    heappush(
                        pq,
                        (
                            tw,
                            g,
                            self._cnt,
                            self._WRITE_KIND,
                            t,
                            (((d, off, True), (pd, po, True)),),
                            0,
                        ),
                    )
                    if tw < limit:
                        limit = tw
                    continue
                # Generic plan (degraded reads/writes, or any write in
                # a degraded run): phase 0 submits at arrival.
                kind, phases = plans[r]
                c, g = self._run_phase(phases[0], t)
                if len(phases) == 1:
                    if c > self.maxc:
                        self.maxc = c
                    cs, ls = self._buf(kind)
                    cs.append(c)
                    ls.append(c - t)
                else:
                    self._cnt += 1
                    heappush(pq, (c, g, self._cnt, kind, t, phases, 1))
                    if c < limit:
                        limit = c
            if ai >= n:
                return True
            # Drain broke on t > limit: retire pending phases up to the
            # next arrival (ties at the arrival re-enter the drain,
            # which settles them with the disjointness check).
            if not self._retire_until(atimes[ai]):
                return False

    def drain(self, threshold: float, sink) -> None:
        """Emit buffered samples with completion <= ``threshold`` (the
        fed stream's last arrival: everything still pending completes
        strictly later, so emitted prefixes concatenate into exactly
        the one-shot completion-sorted order).  ``sink(kind, lats,
        comps)`` receives each kind's latencies completion-sorted, ties
        by submission order, plus the matching completion times (for
        metrics bucketing)."""
        for kind, (cs, ls) in self._kinds.items():
            if not cs:
                continue
            carr = np.asarray(cs)
            ready = carr <= threshold
            if not ready.any():
                continue
            larr = np.asarray(ls)
            ready_c = carr[ready]
            order = np.argsort(ready_c, kind="stable")
            sink(kind, larr[ready][order].tolist(), ready_c[order])
            keep = ~ready
            if keep.any():
                cs[:] = carr[keep].tolist()
                ls[:] = larr[keep].tolist()
            else:
                del cs[:]
                del ls[:]

    def settle(self) -> bool:
        """Retire everything still pending without emitting or writing
        anything back.  False on a late ambiguous tie — the controller
        is still untouched, so multi-core callers (the fleet's carry
        mode) can settle *every* shard before the first write-back and
        abort the whole group cleanly."""
        return self._retire_until(float("inf"))

    def finish(self, sink) -> bool:
        """Retire everything still pending, emit the remaining samples,
        and write the accumulated disk/clock state back.  Returns False
        on a late ambiguous tie (controller still untouched)."""
        if not self._retire_until(float("inf")):
            return False
        self.drain(float("inf"), sink)
        ctrl = self.ctrl
        dbusyt = self.dbusyt
        ddelay = self.ddelay
        dreads = self.dreads
        dwrites = self.dwrites
        dlast = self.dlast
        for i, disk in enumerate(ctrl.disks):
            disk.busy_time = dbusyt[i]
            disk.total_queue_delay = ddelay[i]
            disk.completed_reads += dreads[i]
            disk.completed_writes += dwrites[i]
            lo = dlast[i]
            disk._last_offset = None if lo == _NO_OFFSET else lo
        if self.maxc > float("-inf"):
            ctrl.sim.now = self.maxc
        return True


def _eager_planned(
    ctrl: "ArrayController",
    compiled: "CompiledTrace",
    seq_s: float,
    avg_s: float,
) -> int | None:
    """One-shot :class:`_EagerCore` run over a whole compiled trace
    (the degraded counterpart of :func:`_step_eager`).  Returns the
    request count, or ``None`` on an ambiguous tie with the controller
    untouched."""
    from .compile import _CompiledRun

    core = _EagerCore(ctrl, seq_s, avg_s)
    if not core.feed(_CompiledRun(ctrl, compiled)):
        return None
    latency = ctrl.latency
    obs = ctrl.obs if ctrl.obs.enabled else None

    def sink(kind: str, lats: list[float], comps=None) -> None:
        latency.setdefault(kind, LatencyStats()).samples.extend(lats)
        if obs is not None:
            obs.feed(ctrl.obs_shard, kind, comps, lats)

    if not core.finish(sink):
        return None
    return compiled.n


def step_compiled(
    ctrl: "ArrayController",
    compiled: "CompiledTrace",
    *,
    bucket_ms: float | None = None,
) -> int:
    """Execute a compiled trace with the calendar-queue executor.

    Produces the identical report (clock, per-disk counters and float
    accumulators, latency samples per kind) to scheduling the trace on
    the event heap and running it, at a fraction of the per-event cost.
    Requires a dedicated, otherwise-idle array — the executor owns the
    whole timeline, so mid-run fault injection (which needs a live
    event queue) stays on the heap engine.

    Args:
        ctrl: the array controller (any failure state, any write
            policy — the failure state is simply frozen for the run).
        compiled: the pre-mapped trace.
        bucket_ms: bucket-width hint (snapped down to a power of two).
            Defaults to the minimum disk service time, which guarantees
            a completion never lands in the bucket being processed.

    Returns:
        The number of requests executed.

    Raises:
        RuntimeError: if the simulator already has pending events.
        ValueError: if the bucket width hint is not positive.
    """
    sim = ctrl.sim
    if sim.pending():
        raise RuntimeError("step_compiled requires an idle simulator")
    n = compiled.n
    if n == 0:
        return 0

    params = ctrl.params
    seq_s = (
        params.sequential_seek_ms
        + params.rotational_latency_ms
        + params.transfer_ms_per_unit
    )
    avg_s = (
        params.average_seek_ms
        + params.rotational_latency_ms
        + params.transfer_ms_per_unit
    )
    if (
        bucket_ms is None
        and ctrl.data is None
        and ctrl.write_policy == "rmw"
    ):
        # Common benched shapes: try the eager tier first; an exact
        # timestamp tie (order-ambiguous) leaves state untouched and
        # drops through to the calendar engine below.  Healthy traces
        # take the tuned specialized pass; degraded traces the
        # plan-driven core (same idea, generic phases).
        if ctrl.failed_disk is None:
            eager = _step_eager(ctrl, compiled, seq_s, avg_s)
        else:
            eager = _eager_planned(ctrl, compiled, seq_s, avg_s)
        if eager is not None:
            ctrl.last_engine = "eager"
            ctrl.obs.set_engine(ctrl.obs_shard, "eager")
            return eager
        # An ambiguous tie left state untouched; the calendar engine
        # below replays the trace exactly.
        ctrl.obs.count("tie_abort_replays")

    ctrl.last_engine = "calendar"
    ctrl.obs.set_engine(ctrl.obs_shard, "calendar")
    hint = bucket_ms if bucket_ms is not None else min(seq_s, avg_s)
    from .events import calendar_bucket_width

    width = calendar_bucket_width(hint)
    inv_w = 1.0 / width  # a power of two: t * inv_w is exact

    # Request planning is shared verbatim with the heap executor — same
    # arrays, same fast-path classification, same dataplane contexts.
    from .compile import _CompiledRun

    run = _CompiledRun(ctrl, compiled)
    atimes = run.times
    single = run.single
    wfast = run.wfast
    plans = run.plans
    writes = run.writes
    latency = ctrl.latency
    obs = ctrl.obs if ctrl.obs.enabled else None
    obs_shard = ctrl.obs_shard

    # Per-disk state, mirroring Disk but in parallel lists.
    disks = ctrl.disks
    v = len(disks)
    dqueue: list[deque] = [deque() for _ in range(v)]
    dbusy = [False] * v
    dlast: list[int | None] = [d._last_offset for d in disks]
    dbusyt = [d.busy_time for d in disks]
    ddelay = [d.total_queue_delay for d in disks]
    dreads = [0] * v
    dwrites = [0] * v

    # Per-request progress state.
    wrem = [0] * n  # RMW fast path: IOs outstanding in the current phase
    grem = [0] * n  # generic plans: IOs outstanding in the current phase
    gidx = [0] * n  # generic plans: next phase index

    read_sink: list[float] | None = None
    write_sink: list[float] | None = None
    generic_sinks: dict[str, list[float]] = {}

    # The calendar: bucket index -> unsorted event list.  `evs` is the
    # bucket currently being retired (kept sorted).
    calendar: dict[int, list[tuple]] = {}
    evs: list[tuple] = []
    cur = -1
    now = sim.now
    ai = 0  # next arrival index
    # Sequence numbers replay the heap's: the arrival pump is armed
    # first (seq 0), then every submission takes the next number.
    pump_seq = 0
    seqc = 1

    def submit(d: int, off: int, action: int, req: int) -> None:
        """Disk.submit for the write/generic paths: queue on a busy
        disk, start service inline on an idle one."""
        nonlocal seqc
        if dbusy[d]:
            dqueue[d].append((now, off, action, req))
            return
        dbusy[d] = True
        last = dlast[d]
        s = seq_s if last is not None and -1 <= off - last <= 1 else avg_s
        dlast[d] = off
        dbusyt[d] += s
        ct = now + s
        ev = (ct, seqc, action, d, req)
        seqc += 1
        bi = int(ct * inv_w)
        if bi <= cur:
            insort(evs, ev)
        else:
            lst = calendar.get(bi)
            if lst is None:
                calendar[bi] = [ev]
            else:
                lst.append(ev)

    while True:
        # --- pick the next non-empty bucket (completions or arrivals).
        if calendar:
            nb = min(calendar)
            if ai < n:
                ab = int(atimes[ai] * inv_w)
                if ab < nb:
                    nb = ab
        elif ai < n:
            nb = int(atimes[ai] * inv_w)
        else:
            break
        if nb <= cur:  # unreachable with exact power-of-two widths
            nb = cur + 1
        cur = nb
        bucket_end = (cur + 1) * width
        pending = calendar.pop(cur, None)
        if pending is None:
            evs = []
        else:
            pending.sort()
            evs = pending

        # --- retire the bucket: merge completions with arrival epochs
        # in (time, seq) order.
        ei = 0
        while True:
            if ai < n:
                at = atimes[ai]
                if at < bucket_end and (
                    ei >= len(evs)
                    or at < evs[ei][0]
                    or (at == evs[ei][0] and pump_seq < evs[ei][1])
                ):
                    # Arrival epoch: submit every request sharing this
                    # arrival time, in stream order (the heap pump).
                    now = at
                    while ai < n and atimes[ai] == at:
                        r = ai
                        pos = single[r]
                        if pos is not None:
                            # Healthy/degraded single-IO read, inlined.
                            if read_sink is None:
                                read_sink = latency.setdefault(
                                    "read", LatencyStats()
                                ).samples
                            d = pos[0]
                            if dbusy[d]:
                                dqueue[d].append((at, pos[1], 0, r))
                            else:
                                dbusy[d] = True
                                off = pos[1]
                                last = dlast[d]
                                s = (
                                    seq_s
                                    if last is not None
                                    and -1 <= off - last <= 1
                                    else avg_s
                                )
                                dlast[d] = off
                                dbusyt[d] += s
                                ct = at + s
                                ev = (ct, seqc, 0, d, r)
                                seqc += 1
                                bi = int(ct * inv_w)
                                if bi <= cur:
                                    insort(evs, ev)
                                else:
                                    lst = calendar.get(bi)
                                    if lst is None:
                                        calendar[bi] = [ev]
                                    else:
                                        lst.append(ev)
                        else:
                            winfo = writes[r]
                            if winfo is not None:
                                sid, wd, woff, lba = winfo
                                ctrl._apply_write_dataplane(
                                    sid, wd, woff, ctrl._default_payload(lba)
                                )
                            w = wfast[r]
                            if w is not None:
                                # RMW phase 1: read old data + parity.
                                if write_sink is None:
                                    write_sink = latency.setdefault(
                                        "write", LatencyStats()
                                    ).samples
                                wrem[r] = 2
                                submit(w[0], w[1], _RMW_PHASE1, r)
                                submit(w[2], w[3], _RMW_PHASE1, r)
                            else:
                                phases = plans[r][1]
                                phase = phases[0]
                                gidx[r] = 1
                                grem[r] = len(phase)
                                for pd, poff, is_w in phase:
                                    submit(
                                        pd,
                                        poff,
                                        _GENERIC_WRITE if is_w else _GENERIC_READ,
                                        r,
                                    )
                        ai += 1
                    if ai < n:
                        # The pump re-arms for the next epoch *after*
                        # this epoch's submissions (heap order).
                        pump_seq = seqc
                        seqc += 1
                    continue
            if ei >= len(evs):
                break
            t, _seq, action, d, req = evs[ei]
            ei += 1
            now = t
            # --- the completion itself (Disk._service_done).
            if action == 0:
                dreads[d] += 1
                lat = t - atimes[req]
                read_sink.append(lat)
                if obs is not None:
                    obs.record(obs_shard, "read", t, lat)
            elif action == 1:
                dreads[d] += 1
                left = wrem[req] - 1
                wrem[req] = left
                if not left:
                    # Phase 2: write new data, then new parity.
                    wrem[req] = 2
                    w = wfast[req]
                    submit(w[0], w[1], _RMW_WRITE, req)
                    submit(w[2], w[3], _RMW_WRITE, req)
            elif action == 2:
                dwrites[d] += 1
                left = wrem[req] - 1
                wrem[req] = left
                if not left:
                    lat = t - atimes[req]
                    write_sink.append(lat)
                    if obs is not None:
                        obs.record(obs_shard, "write", t, lat)
            else:
                if action == 4:
                    dwrites[d] += 1
                else:
                    dreads[d] += 1
                left = grem[req] - 1
                grem[req] = left
                if not left:
                    kind, phases = plans[req]
                    i = gidx[req]
                    if i < len(phases):
                        phase = phases[i]
                        gidx[req] = i + 1
                        grem[req] = len(phase)
                        for pd, poff, is_w in phase:
                            submit(
                                pd,
                                poff,
                                _GENERIC_WRITE if is_w else _GENERIC_READ,
                                req,
                            )
                    else:
                        sink = generic_sinks.get(kind)
                        if sink is None:
                            sink = generic_sinks[kind] = latency.setdefault(
                                kind, LatencyStats()
                            ).samples
                        lat = t - atimes[req]
                        sink.append(lat)
                        if obs is not None:
                            obs.record(obs_shard, kind, t, lat)
            # --- start the disk's next queued IO (Disk._start_next).
            q = dqueue[d]
            if q:
                t_issue, off, a2, r2 = q.popleft()
                last = dlast[d]
                s = seq_s if -1 <= off - last <= 1 else avg_s
                dlast[d] = off
                dbusyt[d] += s
                ddelay[d] += t - t_issue
                ct = t + s
                ev = (ct, seqc, a2, d, r2)
                seqc += 1
                bi = int(ct * inv_w)
                if bi <= cur:
                    insort(evs, ev)
                else:
                    lst = calendar.get(bi)
                    if lst is None:
                        calendar[bi] = [ev]
                    else:
                        lst.append(ev)
            else:
                dbusy[d] = False

    # --- write the accumulated state back into the controller.
    for d in range(v):
        disk = disks[d]
        disk.busy_time = dbusyt[d]
        disk.total_queue_delay = ddelay[d]
        disk.completed_reads += dreads[d]
        disk.completed_writes += dwrites[d]
        disk._last_offset = dlast[d]
    sim.now = now
    return n
