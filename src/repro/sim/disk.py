"""Disk service model: seek + rotational latency + transfer, FIFO queue.

Parameters default to an early-1990s 3.5" drive of the kind the paper's
feasibility arithmetic assumes (≈10 ms average seek, 5400 RPM).  The
simulator reasons in *stripe units* — the layout's allocation grain —
so the transfer time is per unit.

The model is deliberately simple (no elevator scheduling, no zoned
geometry): the quantities the paper studies are *relative* read volumes
and queue contention induced by the layout, which survive any monotone
service model.  A short-seek discount for sequential access is included
because rebuild sweeps are sequential on the replacement disk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .events import Simulator

__all__ = ["DiskParameters", "DiskIO", "Disk", "DiskFailedError"]


class DiskFailedError(RuntimeError):
    """IO submitted to a failed disk."""


@dataclass(frozen=True)
class DiskParameters:
    """Service-time model knobs (milliseconds)."""

    average_seek_ms: float = 10.0
    #: Half-rotation at 5400 RPM = 60_000 / 5400 / 2.
    rotational_latency_ms: float = 5.56
    transfer_ms_per_unit: float = 2.0
    #: Seek charged when the head is already adjacent (sequential I/O).
    sequential_seek_ms: float = 0.5

    def service_time(self, last_offset: int | None, offset: int) -> float:
        """Time to serve one unit-sized IO at ``offset`` given the
        previous head position."""
        if last_offset is not None and abs(offset - last_offset) <= 1:
            seek = self.sequential_seek_ms
        else:
            seek = self.average_seek_ms
        return seek + self.rotational_latency_ms + self.transfer_ms_per_unit


@dataclass(slots=True)
class DiskIO:
    """One unit-sized disk request.

    Attributes:
        offset: unit index on the disk.
        is_write: write vs read.
        on_complete: callback fired at completion time.
        issue_time: set by the disk at submission (for queueing stats).
    """

    offset: int
    is_write: bool
    on_complete: Callable[[float], None] | None = None
    issue_time: float = field(default=0.0, compare=False)
    #: Closure-free latency recording: when set, the disk appends
    #: ``completion - issue_time`` here at completion.  Only sound for
    #: single-IO requests submitted at their arrival time (the request
    #: latency IS the IO latency) — the compiled executor's read path.
    latency_sink: list[float] | None = None


class Disk:
    """A single disk: FIFO queue, one IO in service at a time.

    The service chain is allocation-light: the in-service IO sits in a
    slot and one pre-bound completion method is reused for every event,
    so a simulated IO costs one heap entry and zero closures (the fleet
    service multiplies disk counts by array counts, so this is the
    per-IO floor of the whole simulator).
    """

    def __init__(self, sim: Simulator, disk_id: int, params: DiskParameters):
        self.sim = sim
        self.disk_id = disk_id
        self.params = params
        self.failed = False
        self._queue: deque[DiskIO] = deque()
        self._busy = False
        self._last_offset: int | None = None
        self._in_service: DiskIO | None = None
        # One bound method reused for every completion event (heap
        # entries carry no per-IO closure).
        self._on_service_done = self._service_done
        # Precomputed service times — same float expression and
        # evaluation order as DiskParameters.service_time.
        self._seq_service = (
            params.sequential_seek_ms
            + params.rotational_latency_ms
            + params.transfer_ms_per_unit
        )
        self._avg_service = (
            params.average_seek_ms
            + params.rotational_latency_ms
            + params.transfer_ms_per_unit
        )
        # Statistics
        self.busy_time = 0.0
        self.completed_reads = 0
        self.completed_writes = 0
        self.total_queue_delay = 0.0

    @property
    def queue_length(self) -> int:
        """Requests waiting or in service."""
        return len(self._queue) + (1 if self._busy else 0)

    def fail(self) -> None:
        """Fail the disk: queued IOs are dropped, new IOs rejected."""
        self.failed = True
        self._queue.clear()

    def submit(self, io: DiskIO) -> None:
        """Enqueue an IO.

        An idle disk starts service inline (no deque round-trip); a busy
        one queues FIFO.  Both paths charge the same statistics.

        Raises:
            DiskFailedError: if the disk has failed.
        """
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} has failed")
        io.issue_time = self.sim.now
        if self._busy:
            self._queue.append(io)
            return
        self._busy = True
        last = self._last_offset
        offset = io.offset
        if last is not None and -1 <= offset - last <= 1:
            service = self._seq_service
        else:
            service = self._avg_service
        self._last_offset = offset
        self.busy_time += service
        self._in_service = io
        self.sim.schedule(service, self._on_service_done)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        io = self._queue.popleft()
        last = self._last_offset
        offset = io.offset
        if last is not None and -1 <= offset - last <= 1:
            service = self._seq_service
        else:
            service = self._avg_service
        self._last_offset = offset
        self.busy_time += service
        self.total_queue_delay += self.sim.now - io.issue_time
        self._in_service = io
        self.sim.schedule(service, self._on_service_done)

    def _service_done(self) -> None:
        io = self._in_service
        self._in_service = None
        if self.failed:
            # The disk died while this IO was in service: it never
            # completes (no callback, no counter).
            self._busy = False
            return
        if io.is_write:
            self.completed_writes += 1
        else:
            self.completed_reads += 1
        if io.latency_sink is not None:
            io.latency_sink.append(self.sim.now - io.issue_time)
        if io.on_complete is not None:
            io.on_complete(self.sim.now)
        self._start_next()

    @property
    def completed_ios(self) -> int:
        """Total IOs completed."""
        return self.completed_reads + self.completed_writes

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent servicing IOs."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0
