"""Streaming compiled execution: constant-memory windows.

The materialized pipeline (:func:`repro.sim.compile.execute_compiled`)
holds the whole stream — generated vectors, one big
:class:`CompiledTrace`, every latency sample — so memory, not CPU, caps
the horizon.  :func:`execute_windows` runs the same simulation from a
window iterator (:class:`repro.sim.compile.StreamWindows`, or anything
yielding ``(times, is_read, lbas)`` slices in arrival order): each
window is translated with one ``map_batch`` call, executed by an engine
that carries its queue state across window boundaries, and reduced to
constant-memory :class:`repro.sim.stats.LatencyDigest` accumulators —
peak memory is one window, at any horizon.

Reports stay **byte-identical** to the materialized path.  Three
engines mirror :func:`execute_compiled`'s selection gate:

* single-phase streams (read-only by construction, or any mix under
  ``write_policy="write_through"``) run on :class:`_WindowedSolver` —
  the analytic FIFO solver of :func:`~repro.sim.compile.solve_compiled`
  with the per-disk recurrence state (previous completion, last offset,
  busy/delay accumulators) carried between windows.  Partitioning a
  disk's IO sequence does not change the float left-fold, so every
  completion is bit-equal to the whole-trace solve;
* mixed read-modify-write streams on a hookless array run on
  :class:`repro.sim.batchstep._EagerCore` fed window by window, its
  pending-phase heap and per-disk state persisting across feeds.  On
  the core's ambiguity abort (an exact submission-time tie) nothing has
  touched the controller, so the stream is replayed exactly on the heap
  pump;
* everything else (busy simulator, data plane attached, degenerate
  service model) streams through the chained heap pump —
  :class:`~repro.sim.compile._CompiledRun` with a window ``source``,
  which loads one window at a time into the real event engine.

Sample *emission* is the part windowing could reorder, so every engine
defers a sample until no later request can complete before it (a
window's last arrival bounds all future completions) and emits in
completion order with the engine's own tie-break — concatenated window
emissions reproduce the materialized emission order exactly, which
makes the digest's running mean bit-equal to ``sum(samples)`` and every
summary byte-identical (see :mod:`repro.sim.stats`).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..core.registry import get_incidence
from .compile import CompiledTrace, _CompiledRun, compile_stream
from .controller import ArrayController
from .stats import LatencyDigest

__all__ = ["execute_windows"]

_KIND_NAMES = ("read", "degraded_read", "write", "degraded_write")

#: A raw stream window, as yielded by StreamWindows.
_Window = tuple[np.ndarray, np.ndarray, np.ndarray]


def _digest_sink(digests: dict[str, LatencyDigest], obs=None, shard: int = 0):
    """Build a drain sink folding samples into per-kind digests.

    When a metrics recorder ``obs`` is supplied, each drained batch is
    also folded into its completion-time buckets — the drain contract
    (completion-sorted emission, windowed prefixes of the one-shot
    order) is exactly what keeps the recorder's per-bucket folds
    byte-identical across window sizes.
    """

    def sink(kind: str, lats: list[float], comps=None) -> None:
        d = digests.get(kind)
        if d is None:
            d = digests[kind] = LatencyDigest()
        d.extend(lats)
        if obs is not None:
            obs.feed(shard, kind, comps, lats)

    return sink


class _WindowedSolver:
    """The analytic single-phase solver, fed one window at a time.

    Carries the per-disk FIFO recurrence across feeds: the previous
    completion time per disk (the solver's ``prev``), while last
    offset / busy time / queue delay round-trip through the disk
    objects between windows (the same additions in the same order as
    one whole-trace solve, so every float is bit-equal).  Request
    completions pool in request order and drain once no later request
    can land among them.
    """

    __slots__ = ("ctrl", "base", "prev", "maxc", "n", "_comps", "_lats", "_codes")

    def __init__(self, ctrl: ArrayController):
        if ctrl.sim.pending():
            raise RuntimeError("the windowed solver requires an idle simulator")
        self.ctrl = ctrl
        self.base = ctrl.sim.now
        self.prev = [float("-inf")] * len(ctrl.disks)
        self.maxc = float("-inf")
        self.n = 0
        # Pooled, in request order: completion, latency, kind code.
        self._comps: list[float] = []
        self._lats: list[float] = []
        self._codes: list[int] = []

    def feed(self, compiled: CompiledTrace, sink) -> int:
        """Solve one compiled window and emit every pooled sample that
        can no longer be preceded (completion <= this window's last
        arrival).  Returns the window's request count.

        Raises:
            ValueError: on a write under the read-modify-write policy
                (multi-phase; not a single-phase stream).
        """
        ctrl = self.ctrl
        n = compiled.n
        if n == 0:
            return 0
        has_writes = not compiled.read_only()
        if has_writes and ctrl.write_policy != "write_through":
            raise ValueError(
                "the windowed solver handles read-only streams under the "
                "read-modify-write policy (write-through streams are "
                "single-phase and always solvable)"
            )
        self.n += n
        times = self.base + compiled.times
        failed = ctrl.failed_disk
        disks = compiled.disks
        offsets = compiled.offsets

        # --- fan requests out to disk IOs (identical to solve_compiled).
        kind_code = None
        if not has_writes and failed is None:
            io_req = np.arange(n, dtype=np.int64)
            io_disk = disks
            io_off = offsets
            io_write = None
            block_start = io_req
        else:
            counts = np.ones(n, dtype=np.int64)
            kind_code = np.zeros(n, dtype=np.int8)
            if has_writes:
                widx = np.flatnonzero(~compiled.is_read)
                wd, wo, ws, wpd, wpo = ctrl.mapper.map_batch_parity(
                    compiled.lbas[widx]
                )
                if failed is None:
                    wnormal = np.ones(len(widx), dtype=bool)
                    wdataf = wparityf = np.zeros(len(widx), dtype=bool)
                else:
                    wdataf = wd == failed
                    wparityf = wpd == failed
                    wnormal = ~(wdataf | wparityf)
                counts[widx[wnormal]] = 2
                kind_code[widx[wnormal]] = 2
                kind_code[widx[~wnormal]] = 3
                if ctrl.data is not None:
                    b = ctrl.layout.b
                    wlbas = compiled.lbas[widx].tolist()
                    for j in range(len(widx)):
                        ctrl._apply_write_dataplane(
                            int(ws[j]) % b,
                            int(wd[j]),
                            int(wo[j]),
                            ctrl._default_payload(wlbas[j]),
                        )
            deg = None
            if failed is not None:
                layout = ctrl.layout
                inc = get_incidence(layout)
                lengths = inc.stripe_lengths()
                sids = compiled.stripes % layout.b
                deg = compiled.is_read & (disks == failed)
                counts[deg] = lengths[sids[deg]] - 1
                kind_code[deg] = 1
            block_start = np.zeros(n, dtype=np.int64)
            np.cumsum(counts[:-1], out=block_start[1:])
            total = int(counts.sum())
            io_req = np.repeat(np.arange(n, dtype=np.int64), counts)
            io_disk = np.empty(total, dtype=np.int64)
            io_off = np.empty(total, dtype=np.int64)
            io_write = np.zeros(total, dtype=bool)
            hr = compiled.is_read if deg is None else compiled.is_read & ~deg
            io_disk[block_start[hr]] = disks[hr]
            io_off[block_start[hr]] = offsets[hr]
            if has_writes:
                bs = block_start[widx[wnormal]]
                io_disk[bs] = wd[wnormal]
                io_off[bs] = wo[wnormal]
                io_disk[bs + 1] = wpd[wnormal]
                io_off[bs + 1] = wpo[wnormal]
                io_write[bs] = True
                io_write[bs + 1] = True
                bs = block_start[widx[wdataf]]
                io_disk[bs] = wpd[wdataf]
                io_off[bs] = wpo[wdataf]
                io_write[bs] = True
                bs = block_start[widx[wparityf]]
                io_disk[bs] = wd[wparityf]
                io_off[bs] = wo[wparityf]
                io_write[bs] = True
            if deg is not None and deg.any():
                dsids = sids[deg]
                row_start = inc.indptr[dsids]
                row_len = lengths[dsids]
                m = int(row_len.sum())
                run_end = np.cumsum(row_len)
                intra = np.arange(m, dtype=np.int64) - np.repeat(
                    run_end - row_len, row_len
                )
                upos = np.repeat(row_start, row_len) + intra
                udisks = inc.disks[upos]
                uoffs = inc.offsets[upos]
                keep = udisks != failed
                klen = row_len - 1
                kept = int(klen.sum())
                kend = np.cumsum(klen)
                kintra = np.arange(kept, dtype=np.int64) - np.repeat(
                    kend - klen, klen
                )
                kpos = np.repeat(block_start[deg], klen) + kintra
                io_disk[kpos] = udisks[keep]
                io_off[kpos] = uoffs[keep]

        # --- continue each disk's FIFO recurrence from the carried
        # state (the one line that differs from the one-shot solver:
        # ``prev`` starts at the previous window's last completion).
        io_time = times[io_req]
        completion = np.empty(len(io_disk), dtype=np.float64)
        p = ctrl.params
        rot, xfer = p.rotational_latency_ms, p.transfer_ms_per_unit
        avg, seqs = p.average_seek_ms, p.sequential_seek_ms
        order = np.argsort(io_disk, kind="stable")
        sorted_disk = io_disk[order]
        group_bounds = np.flatnonzero(np.diff(sorted_disk)) + 1
        for grp in np.split(order, group_bounds):
            di = int(io_disk[grp[0]])
            disk_obj = ctrl.disks[di]
            offs = io_off[grp]
            seeks = np.empty(len(grp), dtype=np.float64)
            last = disk_obj._last_offset
            seeks[0] = (
                seqs if last is not None and abs(int(offs[0]) - last) <= 1 else avg
            )
            seeks[1:] = np.where(np.abs(np.diff(offs)) <= 1, seqs, avg)
            service = (seeks + rot) + xfer
            arrivals = io_time[grp].tolist()
            comp = []
            busy = disk_obj.busy_time
            delay = disk_obj.total_queue_delay
            prev = self.prev[di]
            for a, s in zip(arrivals, service.tolist()):
                start = a if a > prev else prev
                delay += start - a
                busy += s
                prev = start + s
                comp.append(prev)
            completion[grp] = comp
            self.prev[di] = prev
            disk_obj.busy_time = busy
            disk_obj.total_queue_delay = delay
            if io_write is None:
                disk_obj.completed_reads += len(grp)
            else:
                nw = int(io_write[grp].sum())
                disk_obj.completed_writes += nw
                disk_obj.completed_reads += len(grp) - nw
            disk_obj._last_offset = int(offs[-1])

        # --- pool per-request completions (request order) and drain.
        if len(io_disk) == n:
            req_completion = completion
        else:
            req_completion = np.maximum.reduceat(completion, block_start)
        top = float(req_completion.max())
        if top > self.maxc:
            self.maxc = top
        self._comps.extend(req_completion.tolist())
        self._lats.extend((req_completion - times).tolist())
        if kind_code is None:
            self._codes.extend([0] * n)
        else:
            self._codes.extend(kind_code.tolist())
        self._drain(float(times[-1]), sink)
        return n

    def _drain(self, threshold: float, sink) -> None:
        """Emit pooled samples with completion <= ``threshold``.  Every
        later request arrives at or after the threshold, so its
        completion cannot sort before the emitted prefix — and within
        the pool a stable completion sort breaks ties by request order,
        exactly the one-shot solver's ``done_order``."""
        comps = self._comps
        if not comps:
            return
        carr = np.asarray(comps)
        ready = carr <= threshold
        if not ready.any():
            return
        larr = np.asarray(self._lats)
        codes = np.asarray(self._codes, dtype=np.int8)
        order = np.argsort(carr[ready], kind="stable")
        comp_done = carr[ready][order]
        lat_done = larr[ready][order]
        kinds_done = codes[ready][order]
        for code, name in enumerate(_KIND_NAMES):
            mask = kinds_done == code
            sel = lat_done[mask]
            if len(sel):
                sink(name, sel.tolist(), comp_done[mask])
        keep = ~ready
        if keep.any():
            comps[:] = carr[keep].tolist()
            self._lats[:] = larr[keep].tolist()
            self._codes[:] = codes[keep].tolist()
        else:
            del comps[:]
            del self._lats[:]
            del self._codes[:]

    def finish(self, sink) -> None:
        """Emit everything still pooled and advance the clock to the
        last completion (the one-shot solver's final ``sim.now``)."""
        self._drain(float("inf"), sink)
        if self.maxc > float("-inf"):
            self.ctrl.sim.now = self.maxc


def _eager_windows(
    ctrl: ArrayController,
    windows: Iterable[_Window],
    digests: dict[str, LatencyDigest],
    seq_s: float,
    avg_s: float,
) -> int | None:
    """Stream a mixed RMW workload through the eager core, one window
    at a time.  Returns the request count, or ``None`` on an ambiguous
    tie — the controller is untouched and the caller replays."""
    from .batchstep import _EagerCore

    core = _EagerCore(ctrl, seq_s, avg_s)
    obs = ctrl.obs
    sink = _digest_sink(digests, obs if obs.enabled else None, ctrl.obs_shard)
    n = 0
    for times, is_read, lbas in windows:
        w = compile_stream(ctrl.mapper, times, is_read, lbas)
        if not w.n:
            continue
        run = _CompiledRun(ctrl, w)
        if not core.feed(run):
            return None
        n += w.n
        obs.count("window_boundaries", volatile=True)
        core.drain(run.times[-1], sink)
    if not core.finish(sink):
        return None
    ctrl.last_engine = "windowed-eager"
    obs.set_engine(ctrl.obs_shard, "windowed-eager")
    return n


def _pump_windows(
    ctrl: ArrayController,
    it: Iterator[_Window],
    digests: dict[str, LatencyDigest],
) -> int:
    """Stream through the chained heap pump: the general engine, able
    to interleave with foreign events (rebuilds, timers, other streams).
    Latency-sample lists are swept into the digests at every window
    boundary, so they never grow past one window.

    Metrics recording rides the event-level hooks (the controller's
    ``_record``, the compiled run's inlined sinks), which see every
    completion at its event time — the boundary sweep below moves
    samples that the recorder has already bucketed, so it must not feed
    the recorder again."""
    ctrl.last_engine = "windowed-pump"
    ctrl.obs.set_engine(ctrl.obs_shard, "windowed-pump")
    mapper = ctrl.mapper
    first: CompiledTrace | None = None
    for times, is_read, lbas in it:
        w = compile_stream(mapper, times, is_read, lbas)
        if w.n:
            first = w
            break
    if first is None:
        return 0
    obs = ctrl.obs
    obs.count("window_boundaries", volatile=True)
    scheduled = [first.n]

    def source() -> CompiledTrace | None:
        for times, is_read, lbas in it:
            w = compile_stream(mapper, times, is_read, lbas)
            if w.n:
                scheduled[0] += w.n
                obs.count("window_boundaries", volatile=True)
                return w
        return None

    latency = ctrl.latency

    def drain() -> None:
        for kind, st in latency.items():
            lst = st.samples
            if not lst:
                continue
            d = digests.get(kind)
            if d is None:
                d = digests[kind] = LatencyDigest()
            d.extend(lst)
            # Clear in place: the pump and controller cache the list
            # object as their recording sink.
            del lst[:]

    _CompiledRun(ctrl, first, source=source, on_window=drain).schedule()
    ctrl.sim.run()
    drain()
    return scheduled[0]


def execute_windows(
    ctrl: ArrayController,
    windows: Iterable[_Window],
    *,
    read_only_hint: bool = False,
    digests: dict[str, LatencyDigest] | None = None,
) -> tuple[int, dict[str, LatencyDigest]]:
    """Run a windowed request stream through the fastest exact engine.

    The streaming counterpart of
    :func:`repro.sim.compile.execute_compiled`: same simulation, same
    per-disk counters and clock, and latency summaries byte-identical
    to the materialized run — but peak memory is one window.  The
    selection gate mirrors the materialized one:

    1. a busy simulator → the chained heap pump (window source);
    2. ``read_only_hint`` (the caller knows every request is a read —
       e.g. ``read_fraction >= 1``) or write-through policy → the
       windowed analytic solver;
    3. mixed read-modify-write on a hookless array (no data plane) →
       the windowed eager core; an exact-tie abort replays the stream
       bit-exactly on the heap pump (``windows`` must be re-iterable
       for the replay — :class:`~repro.sim.compile.StreamWindows` is;
       one-shot generators skip the eager tier);
    4. otherwise → the chained heap pump.

    The hint is advisory: an all-read stream without it simply runs on
    the eager core, whose read recurrence performs the identical float
    operations, so the report does not change — only the speed.

    Latency goes to constant-memory digests, not the controller's
    sample lists; the heap-pump path drains ``ctrl.latency`` into the
    digests at window boundaries, so the controller's accumulators must
    start empty (fresh controllers do).  Returns ``(scheduled,
    digests)``.
    """
    if digests is None:
        digests = {}
    sim = ctrl.sim
    if not sim.pending():
        if read_only_hint or ctrl.write_policy == "write_through":
            solver = _WindowedSolver(ctrl)
            obs = ctrl.obs
            ctrl.last_engine = "windowed-solver"
            obs.set_engine(ctrl.obs_shard, "windowed-solver")
            sink = _digest_sink(
                digests, obs if obs.enabled else None, ctrl.obs_shard
            )
            n = 0
            for times, is_read, lbas in windows:
                n += solver.feed(
                    compile_stream(ctrl.mapper, times, is_read, lbas), sink
                )
                obs.count("window_boundaries", volatile=True)
            solver.finish(sink)
            return n, digests
        p = ctrl.params
        min_service = (
            min(p.sequential_seek_ms, p.average_seek_ms)
            + p.rotational_latency_ms
            + p.transfer_ms_per_unit
        )
        seq_s = (
            p.sequential_seek_ms + p.rotational_latency_ms + p.transfer_ms_per_unit
        )
        avg_s = p.average_seek_ms + p.rotational_latency_ms + p.transfer_ms_per_unit
        reiterable = iter(windows) is not windows
        if (
            min_service > 0.0
            and ctrl.write_policy == "rmw"
            and ctrl.data is None
            and reiterable
        ):
            n = _eager_windows(ctrl, windows, digests, seq_s, avg_s)
            if n is not None:
                return n, digests
            # Ambiguous tie: nothing touched; replay exactly on the pump.
            digests.clear()
            ctrl.obs.reset_shard(ctrl.obs_shard)
            ctrl.obs.count("tie_abort_replays")
            windows = iter(windows)
    return _pump_windows(ctrl, iter(windows), digests), digests
