"""On-line reconstruction of a failed disk (the paper's Section 1 story).

The rebuild process sweeps every stripe that crossed the failed disk:
read the stripe's surviving units, XOR them, write the recovered unit to
a spare disk.  A bounded number of stripes rebuild concurrently
(``parallelism``), competing with any foreground workload on the same
disk queues — exactly the contention trade-off parity declustering
addresses by shrinking the fraction ``(k-1)/(v-1)`` of each surviving
disk that must be read.

By default the scan is *batched*: every read of the sweep is planned in
one vectorized pass over the layout's sparse stripe incidence
(:meth:`repro.layouts.StripeIncidence.rebuild_scan`) before the first
IO issues, and the per-disk read tallies come from one ``bincount``.
``batched=False`` keeps the original stripe-by-stripe Python walk; both
modes issue identical IOs in identical order, so their reports match
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.registry import get_incidence
from .controller import ArrayController
from .disk import Disk, DiskIO

__all__ = ["RebuildProcess", "RebuildReport"]


@dataclass
class RebuildReport:
    """Outcome of a completed rebuild."""

    failed_disk: int
    duration_ms: float
    stripes_rebuilt: int
    units_read_per_disk: list[int]
    spare_units_written: int
    data_verified: bool | None = None

    def read_fractions(self, size: int) -> list[float]:
        """Fraction of each surviving disk read during rebuild (the
        Condition 3 measurement)."""
        return [reads / size for reads in self.units_read_per_disk]


@dataclass
class RebuildProcess:
    """Drives the reconstruction of ``controller.failed_disk``.

    Call :meth:`start` after failing a disk, then run the simulator; the
    report is available once :attr:`done` is set.
    """

    controller: ArrayController
    parallelism: int = 4
    on_complete: Callable[[RebuildReport], None] | None = None
    #: Optional distributed sparing: where each crossing stripe's
    #: recovered unit lands.  Accepts a ``{stripe id: (disk, offset)}``
    #: dict or a :class:`repro.sim.runner.SparePlan` (arrays aligned
    #: with the ascending crossing-stripe scan).  When None, a dedicated
    #: spare disk absorbs all writes.
    spare_units: object | None = None
    #: Plan the scan vectorized from the sparse incidence (default);
    #: ``False`` walks the stripes in Python — same IOs, same order.
    batched: bool = True

    done: bool = field(default=False, init=False)
    report: RebuildReport | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")

    # ------------------------------------------------------------------
    # Scan planning
    # ------------------------------------------------------------------

    def _plan_scan_batched(self, failed: int) -> None:
        """One vectorized pass: crossing stripes, failed offsets, and
        every surviving unit to read, straight from the CSR incidence."""
        layout = self.controller.layout
        inc = get_incidence(layout)
        sids, failed_offsets, surv_indptr, surv_disks, surv_offsets = (
            inc.rebuild_scan(failed)
        )
        self._queue = sids.tolist()
        self._failed_offsets = failed_offsets.tolist()
        self._surv_indptr = surv_indptr.tolist()
        self._surv_disks = surv_disks.tolist()
        self._surv_offsets = surv_offsets.tolist()
        self._units_read = np.bincount(surv_disks, minlength=layout.v).tolist()

    def _plan_scan_scalar(self, failed: int) -> None:
        """The original stripe-by-stripe walk (equivalence baseline)."""
        layout = self.controller.layout
        queue: list[int] = []
        failed_offsets: list[int] = []
        indptr = [0]
        surv_disks: list[int] = []
        surv_offsets: list[int] = []
        units_read = [0] * layout.v
        for sid, stripe in enumerate(layout.stripes):
            if not any(d == failed for d, _ in stripe.units):
                continue
            queue.append(sid)
            failed_offsets.append(
                next(off for d, off in stripe.units if d == failed)
            )
            for d, off in stripe.units:
                if d == failed:
                    continue
                surv_disks.append(d)
                surv_offsets.append(off)
                units_read[d] += 1
            indptr.append(len(surv_disks))
        self._queue = queue
        self._failed_offsets = failed_offsets
        self._surv_indptr = indptr
        self._surv_disks = surv_disks
        self._surv_offsets = surv_offsets
        self._units_read = units_read

    def _resolve_spares(self) -> None:
        """Normalize ``spare_units`` to per-queue-index target arrays."""
        self._spare_disk: list[int] | None = None
        self._spare_off: list[int] | None = None
        spares = self.spare_units
        if spares is None:
            return
        if isinstance(spares, dict):
            self._spare_disk = [spares[sid][0] for sid in self._queue]
            self._spare_off = [spares[sid][1] for sid in self._queue]
            return
        # SparePlan-shaped: arrays aligned with the ascending scan.
        sids = np.asarray(spares.stripe_ids)
        if len(sids) != len(self._queue) or not np.array_equal(
            sids, np.asarray(self._queue)
        ):
            raise ValueError(
                "spare plan does not cover the failed disk's crossing stripes"
            )
        self._spare_disk = np.asarray(spares.disks).tolist()
        self._spare_off = np.asarray(spares.offsets).tolist()

    # ------------------------------------------------------------------
    # Event-driven sweep
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the rebuild sweep.

        Raises:
            RuntimeError: if no disk has failed.
        """
        ctrl = self.controller
        if ctrl.failed_disk is None:
            raise RuntimeError("fail a disk before starting a rebuild")
        failed = ctrl.failed_disk

        if self.batched:
            self._plan_scan_batched(failed)
        else:
            self._plan_scan_scalar(failed)
        self._resolve_spares()
        self._next = 0
        self._outstanding = 0
        self._start_time = ctrl.sim.now
        self._spare = Disk(ctrl.sim, ctrl.layout.v, ctrl.params)
        self._spare_writes = 0
        self._spare_image: dict[int, np.ndarray] = {}
        if ctrl.data is not None:
            # Foreground degraded writes that land on a unit we already
            # recovered must also reach the replacement copy, or the
            # spare goes stale the moment traffic runs during a rebuild.
            ctrl.add_degraded_write_hook(self._absorb_degraded_write)

        for _ in range(min(self.parallelism, len(self._queue))):
            self._launch_next()
        if not self._queue:
            self._finish()

    def _absorb_degraded_write(self, offset: int, payload: np.ndarray) -> None:
        if offset in self._spare_image:
            self._spare_image[offset] = payload.copy()

    def _launch_next(self) -> None:
        if self._next >= len(self._queue):
            return
        idx = self._next
        self._next += 1
        self._outstanding += 1

        ctrl = self.controller
        sid = self._queue[idx]
        failed_offset = self._failed_offsets[idx]
        lo, hi = self._surv_indptr[idx], self._surv_indptr[idx + 1]
        remaining = hi - lo

        def read_done(_when: float) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._write_spare(idx, sid, failed_offset)

        for d, off in zip(self._surv_disks[lo:hi], self._surv_offsets[lo:hi]):
            ctrl.disks[d].submit(
                DiskIO(offset=off, is_write=False, on_complete=read_done)
            )

    def _write_spare(self, idx: int, sid: int, failed_offset: int) -> None:
        ctrl = self.controller
        if ctrl.data is not None:
            self._spare_image[failed_offset] = ctrl.data.reconstruct_unit(
                sid, ctrl.failed_disk
            )

        def write_done(_when: float) -> None:
            self._spare_writes += 1
            obs = ctrl.obs
            if obs.enabled:
                # Progress gauge at each decile crossing (and at 100%):
                # sim-clock timestamps, so the series is deterministic.
                total = len(self._queue)
                done = self._spare_writes
                if (10 * done) // total != (10 * (done - 1)) // total:
                    obs.gauge(
                        "rebuild_progress",
                        ctrl.obs_shard,
                        ctrl.sim.now,
                        done / total,
                    )
            self._outstanding -= 1
            if self._next < len(self._queue):
                self._launch_next()
            elif self._outstanding == 0:
                self._finish()

        if self._spare_disk is not None:
            # Distributed sparing: the recovered unit lands on its
            # stripe's reserved spare unit, sharing the survivors' queues.
            ctrl.disks[self._spare_disk[idx]].submit(
                DiskIO(
                    offset=self._spare_off[idx],
                    is_write=True,
                    on_complete=write_done,
                )
            )
        else:
            self._spare.submit(
                DiskIO(offset=failed_offset, is_write=True, on_complete=write_done)
            )

    def _finish(self) -> None:
        ctrl = self.controller
        verified: bool | None = None
        if ctrl.data is not None:
            # The rebuild is over: stop observing foreground writes (and
            # let a long-lived controller drop this process entirely).
            ctrl.remove_degraded_write_hook(self._absorb_degraded_write)
            original = ctrl.data.snapshot_disk(ctrl.failed_disk)
            verified = all(
                np.array_equal(original[off], img)
                for off, img in self._spare_image.items()
            ) and len(self._spare_image) == ctrl.layout.size

        self.report = RebuildReport(
            failed_disk=ctrl.failed_disk,
            duration_ms=ctrl.sim.now - self._start_time,
            stripes_rebuilt=len(self._queue),
            units_read_per_disk=self._units_read,
            spare_units_written=self._spare_writes,
            data_verified=verified,
        )
        self.done = True
        if self.on_complete is not None:
            self.on_complete(self.report)
