"""On-line reconstruction of a failed disk (the paper's Section 1 story).

The rebuild process sweeps every stripe that crossed the failed disk:
read the stripe's surviving units, XOR them, write the recovered unit to
a spare disk.  A bounded number of stripes rebuild concurrently
(``parallelism``), competing with any foreground workload on the same
disk queues — exactly the contention trade-off parity declustering
addresses by shrinking the fraction ``(k-1)/(v-1)`` of each surviving
disk that must be read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .controller import ArrayController
from .disk import Disk, DiskIO

__all__ = ["RebuildProcess", "RebuildReport"]


@dataclass
class RebuildReport:
    """Outcome of a completed rebuild."""

    failed_disk: int
    duration_ms: float
    stripes_rebuilt: int
    units_read_per_disk: list[int]
    spare_units_written: int
    data_verified: bool | None = None

    def read_fractions(self, size: int) -> list[float]:
        """Fraction of each surviving disk read during rebuild (the
        Condition 3 measurement)."""
        return [reads / size for reads in self.units_read_per_disk]


@dataclass
class RebuildProcess:
    """Drives the reconstruction of ``controller.failed_disk``.

    Call :meth:`start` after failing a disk, then run the simulator; the
    report is available once :attr:`done` is set.
    """

    controller: ArrayController
    parallelism: int = 4
    on_complete: Callable[[RebuildReport], None] | None = None
    #: Optional distributed sparing: per stripe id, the (disk, offset)
    #: spare unit to rebuild into.  When None, a dedicated spare disk
    #: absorbs all writes.
    spare_units: dict[int, tuple[int, int]] | None = None

    done: bool = field(default=False, init=False)
    report: RebuildReport | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")

    def start(self) -> None:
        """Begin the rebuild sweep.

        Raises:
            RuntimeError: if no disk has failed.
        """
        ctrl = self.controller
        if ctrl.failed_disk is None:
            raise RuntimeError("fail a disk before starting a rebuild")
        failed = ctrl.failed_disk
        layout = ctrl.layout

        self._queue = [
            sid
            for sid, stripe in enumerate(layout.stripes)
            if any(d == failed for d, _ in stripe.units)
        ]
        self._next = 0
        self._outstanding = 0
        self._start_time = ctrl.sim.now
        self._units_read = [0] * layout.v
        self._spare = Disk(ctrl.sim, layout.v, ctrl.params)
        self._spare_writes = 0
        self._spare_image: dict[int, np.ndarray] = {}

        for _ in range(min(self.parallelism, len(self._queue))):
            self._launch_next()
        if not self._queue:
            self._finish()

    def _launch_next(self) -> None:
        if self._next >= len(self._queue):
            return
        sid = self._queue[self._next]
        self._next += 1
        self._outstanding += 1

        ctrl = self.controller
        failed = ctrl.failed_disk
        stripe = ctrl.layout.stripes[sid]
        survivors = [(d, off) for d, off in stripe.units if d != failed]
        failed_offset = next(off for d, off in stripe.units if d == failed)
        remaining = len(survivors)

        def read_done(_when: float) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._write_spare(sid, failed_offset)

        for d, off in survivors:
            self._units_read[d] += 1
            ctrl.disks[d].submit(DiskIO(offset=off, is_write=False, on_complete=read_done))

    def _write_spare(self, sid: int, failed_offset: int) -> None:
        ctrl = self.controller
        if ctrl.data is not None:
            self._spare_image[failed_offset] = ctrl.data.reconstruct_unit(
                sid, ctrl.failed_disk
            )

        def write_done(_when: float) -> None:
            self._spare_writes += 1
            self._outstanding -= 1
            if self._next < len(self._queue):
                self._launch_next()
            elif self._outstanding == 0:
                self._finish()

        if self.spare_units is not None:
            # Distributed sparing: the recovered unit lands on its
            # stripe's reserved spare unit, sharing the survivors' queues.
            sdisk, soff = self.spare_units[sid]
            ctrl.disks[sdisk].submit(
                DiskIO(offset=soff, is_write=True, on_complete=write_done)
            )
        else:
            self._spare.submit(
                DiskIO(offset=failed_offset, is_write=True, on_complete=write_done)
            )

    def _finish(self) -> None:
        ctrl = self.controller
        verified: bool | None = None
        if ctrl.data is not None:
            original = ctrl.data.snapshot_disk(ctrl.failed_disk)
            verified = all(
                np.array_equal(original[off], img)
                for off, img in self._spare_image.items()
            ) and len(self._spare_image) == ctrl.layout.size

        self.report = RebuildReport(
            failed_disk=ctrl.failed_disk,
            duration_ms=ctrl.sim.now - self._start_time,
            stripes_rebuilt=len(self._queue),
            units_read_per_disk=self._units_read,
            spare_units_written=self._spare_writes,
            data_verified=verified,
        )
        self.done = True
        if self.on_complete is not None:
            self.on_complete(self.report)
