"""Synthetic workload generation.

Open-loop Poisson arrivals over the logical data address space, with a
configurable read fraction and either uniform or Zipf-skewed addresses
(the paper's motivating OLTP workloads are small, random, and skewed).
Everything is seeded for reproducibility.

Generation and execution are decoupled: the stream is drawn as vectors
by :func:`repro.sim.compile.generate_request_stream`, pre-mapped with
one ``map_batch`` call, and then either pumped through the compiled
executor (default) or submitted request-by-request through the
controller's scalar path (``batched=False``) — both orderings are
identical, so the two paths produce the same simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .compile import (
    StreamWindows,
    compile_workload,
    schedule_compiled,
    schedule_compiled_scalar,
)
from .controller import ArrayController

__all__ = ["WorkloadConfig", "StreamWindows", "drive_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic workload parameters.

    Attributes:
        interarrival_ms: mean of the exponential interarrival time.
        read_fraction: probability a request is a read.
        zipf_theta: 0.0 = uniform addresses; higher skews toward hot
            units (probability ∝ 1/(rank+1)^theta).
        seed: RNG seed.
    """

    interarrival_ms: float = 5.0
    read_fraction: float = 0.7
    zipf_theta: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.interarrival_ms <= 0:
            raise ValueError("interarrival_ms must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be >= 0")


def drive_workload(
    controller: ArrayController,
    config: WorkloadConfig,
    duration_ms: float,
    *,
    batched: bool = True,
) -> int:
    """Schedule Poisson arrivals on the controller's simulator.

    Arrivals are all pre-scheduled (open loop: request issue does not
    wait for completions, so queueing shows up as latency), relative to
    the current simulated time — a workload can start mid-simulation
    (e.g. during a rebuild).  The whole stream is compiled (generated
    and address-translated as vectors) up front; with ``batched=False``
    the same stream is submitted through the scalar per-event path
    instead of the compiled executor.  Returns the number of requests
    scheduled; run ``controller.sim.run()`` to execute them.
    """
    compiled = compile_workload(controller.mapper, config, duration_ms)
    if batched:
        return schedule_compiled(controller, compiled)
    return schedule_compiled_scalar(controller, compiled)
