"""Synthetic workload generation.

Open-loop Poisson arrivals over the logical data address space, with a
configurable read fraction and either uniform or Zipf-skewed addresses
(the paper's motivating OLTP workloads are small, random, and skewed).
Everything is seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .controller import ArrayController

__all__ = ["WorkloadConfig", "drive_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic workload parameters.

    Attributes:
        interarrival_ms: mean of the exponential interarrival time.
        read_fraction: probability a request is a read.
        zipf_theta: 0.0 = uniform addresses; higher skews toward hot
            units (probability ∝ 1/(rank+1)^theta).
        seed: RNG seed.
    """

    interarrival_ms: float = 5.0
    read_fraction: float = 0.7
    zipf_theta: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.interarrival_ms <= 0:
            raise ValueError("interarrival_ms must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be >= 0")


def _address_sampler(
    rng: np.random.Generator, capacity: int, theta: float
):
    """Return a function sampling logical addresses."""
    if theta == 0.0:
        return lambda: int(rng.integers(0, capacity))
    weights = 1.0 / np.power(np.arange(1, capacity + 1, dtype=np.float64), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    # Deterministic rank->address shuffle so the hot set is spread over
    # stripes rather than clustered at low addresses.
    perm = rng.permutation(capacity)
    return lambda: int(perm[np.searchsorted(cdf, rng.random())])


def drive_workload(
    controller: ArrayController,
    config: WorkloadConfig,
    duration_ms: float,
) -> int:
    """Schedule Poisson arrivals on the controller's simulator.

    Arrivals are all pre-scheduled (open loop: request issue does not
    wait for completions, so queueing shows up as latency).  Returns the
    number of requests scheduled; run ``controller.sim.run()`` to
    execute them.
    """
    rng = np.random.default_rng(config.seed)
    sample_addr = _address_sampler(rng, controller.mapper.capacity, config.zipf_theta)
    scheduled = 0
    # Arrival offsets are relative to the current simulated time, so a
    # workload can start mid-simulation (e.g. during a rebuild).
    t = rng.exponential(config.interarrival_ms)
    while t < duration_ms:
        lba = sample_addr()
        if rng.random() < config.read_fraction:
            controller.sim.schedule(t, lambda lba=lba: controller.submit_read(lba))
        else:
            controller.sim.schedule(t, lambda lba=lba: controller.submit_write(lba))
        scheduled += 1
        t += rng.exponential(config.interarrival_ms)
    return scheduled
