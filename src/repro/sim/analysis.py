"""Analytic load model in the style of Muntz & Lui [11].

Muntz and Lui's VLDB'90 paper — the work that proposed parity
declustering and is the paper's reference [11] — analyzes disk-array
performance with a queueing model rather than simulation.  This module
implements the load-accounting core of that style of analysis for our
layouts: per-disk arrival rates of unit IOs in normal, degraded, and
rebuilding modes, M/M/1-style utilization and response-time estimates,
and the headline declustering ratio.

The key structural quantity is the *declustering ratio*
``α = (k-1)/(v-1)``: in degraded mode each surviving disk absorbs an
extra ``α`` fraction of the failed disk's read load (plus the fan-out
of on-the-fly reconstructions), so smaller ``k`` degrades more
gracefully — the trade the whole paper is about.

These are open-system estimates; the test suite validates them against
the event-driven simulator at low-to-moderate utilization, where the
M/M/1 approximation is honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layouts import Layout, evaluate_layout
from .disk import DiskParameters

__all__ = ["LoadEstimate", "analyze_load", "declustering_ratio"]


def declustering_ratio(v: int, k: int) -> float:
    """``α = (k-1)/(v-1)``: fraction of each surviving disk read during
    reconstruction, and the degraded-mode load-spreading factor."""
    return (k - 1) / (v - 1)


@dataclass(frozen=True)
class LoadEstimate:
    """Analytic per-disk load for one operating mode.

    Attributes:
        ios_per_ms: unit-IO arrival rate at the busiest disk.
        utilization: busiest-disk utilization ``ρ = λ·S``.
        response_ms: M/M/1 response-time estimate ``S/(1-ρ)`` at the
            busiest disk (``inf`` when saturated).
        mode: ``"normal"``, ``"degraded"``, or ``"rebuild"``.
    """

    ios_per_ms: float
    utilization: float
    response_ms: float
    mode: str

    @property
    def saturated(self) -> bool:
        return self.utilization >= 1.0


def _service_time_ms(params: DiskParameters) -> float:
    """Mean per-IO service time under random access."""
    return (
        params.average_seek_ms
        + params.rotational_latency_ms
        + params.transfer_ms_per_unit
    )


def analyze_load(
    layout: Layout,
    *,
    arrival_per_ms: float,
    read_fraction: float = 0.7,
    mode: str = "normal",
    rebuild_parallelism: int = 0,
    disk_params: DiskParameters | None = None,
) -> LoadEstimate:
    """Estimate the busiest disk's load under a random small-IO workload.

    Unit-IO accounting (uniform addresses over data units):

    * read → 1 IO; degraded read of a failed unit → ``k-1`` IOs spread
      over the survivors;
    * write → 4 IOs (read+write of data and parity), the two touched
      disks weighted by the layout's *maximum parity overhead* — an
      unevenly placed parity concentrates the write traffic
      (Condition 2's bottleneck);
    * rebuild adds ``parallelism`` concurrent sweeps each reading
      ``α = (k-1)/(v-1)`` of every surviving disk.

    Args:
        arrival_per_ms: logical request arrival rate (whole array).
        mode: ``"normal"``, ``"degraded"`` (one disk failed, no rebuild)
            or ``"rebuild"`` (degraded plus an active rebuild sweep).

    Raises:
        ValueError: on an unknown mode or bad rates.
    """
    if mode not in ("normal", "degraded", "rebuild"):
        raise ValueError(f"unknown mode {mode!r}")
    if arrival_per_ms < 0 or not 0 <= read_fraction <= 1:
        raise ValueError("invalid workload parameters")
    params = disk_params if disk_params is not None else DiskParameters()
    service = _service_time_ms(params)
    metrics = evaluate_layout(layout)
    v = layout.v
    k = metrics.k_max
    alpha = declustering_ratio(v, k)

    write_fraction = 1 - read_fraction
    # Parity imbalance multiplier: 1.0 for perfectly balanced layouts,
    # k * max_overhead in general (max_overhead = 1/k when balanced).
    parity_skew = float(metrics.parity_overhead_max * k)

    if mode == "normal":
        # Reads spread evenly; each write lands 2 IOs on the data disk's
        # queue-equivalent and 2 on a parity disk (skew-weighted).
        per_disk = arrival_per_ms * (
            read_fraction / v + write_fraction * (2 + 2 * parity_skew) / v
        )
    else:
        survivors = v - 1
        # Reads: 1/v of them hit the failed disk and fan out k-1 IOs over
        # the survivors; the rest spread over v-1 disks.
        read_load = (
            read_fraction * ((v - 1) / v / survivors + (k - 1) / v / survivors)
        )
        write_load = write_fraction * (2 + 2 * parity_skew) / survivors
        per_disk = arrival_per_ms * (read_load + write_load)
        if mode == "rebuild" and rebuild_parallelism > 0:
            # Each concurrent sweep keeps roughly one outstanding read on
            # an alpha-fraction of the survivors plus one spare write.
            per_disk += rebuild_parallelism * alpha / service

    utilization = per_disk * service
    response = service / (1 - utilization) if utilization < 1 else float("inf")
    return LoadEstimate(
        ios_per_ms=per_disk,
        utilization=min(utilization, 1.0),
        response_ms=response,
        mode=mode,
    )
