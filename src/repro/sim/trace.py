"""Trace-driven workloads: record, store, and replay request streams.

The paper's motivating workloads are OLTP traces; real evaluations
replay captured traces rather than synthetic arrivals.  This module
provides a minimal trace format (CSV: ``time_ms,op,lba``), a
synthesizer that freezes a :class:`WorkloadConfig` stream into a trace,
and a replayer that drives any :class:`ArrayController` — so the same
request stream can be replayed against different layouts for an
apples-to-apples comparison.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .compile import (
    compile_trace,
    generate_request_stream,
    schedule_compiled,
    schedule_compiled_scalar,
)
from .controller import ArrayController
from .workload import WorkloadConfig

__all__ = [
    "TraceRecord",
    "synthesize_trace",
    "save_trace",
    "load_trace",
    "replay_trace",
]


@dataclass(frozen=True)
class TraceRecord:
    """One request: arrival time (ms), operation, logical address."""

    time_ms: float
    op: str  # "r" or "w"
    lba: int

    def __post_init__(self) -> None:
        if self.op not in ("r", "w"):
            raise ValueError(f"op must be 'r' or 'w', got {self.op!r}")
        if self.time_ms < 0 or self.lba < 0:
            raise ValueError(f"negative time or lba in {self}")


def synthesize_trace(
    config: WorkloadConfig, duration_ms: float, capacity: int
) -> list[TraceRecord]:
    """Freeze a synthetic workload into an explicit trace.

    Uses the canonical vectorized generator
    (:func:`repro.sim.compile.generate_request_stream`) — the same one
    :func:`drive_workload` consumes — so a synthesized trace replayed on
    a controller reproduces the equivalent live workload exactly.
    """
    times, is_read, lbas = generate_request_stream(config, duration_ms, capacity)
    return [
        TraceRecord(time_ms=t, op="r" if r else "w", lba=lba)
        for t, r, lba in zip(times.tolist(), is_read.tolist(), lbas.tolist())
    ]


def save_trace(records: Iterable[TraceRecord], path: str | Path) -> None:
    """Write a trace as ``time_ms,op,lba`` CSV (with header)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_ms", "op", "lba"])
        for rec in records:
            writer.writerow([f"{rec.time_ms:.6f}", rec.op, rec.lba])


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Read a CSV trace.

    Raises:
        ValueError: on malformed rows (bad op, negative values, wrong
            column count).
    """
    records: list[TraceRecord] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["time_ms", "op", "lba"]:
            raise ValueError(f"unexpected trace header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(f"line {lineno}: expected 3 columns, got {len(row)}")
            records.append(
                TraceRecord(time_ms=float(row[0]), op=row[1], lba=int(row[2]))
            )
    return records


def replay_trace(
    controller: ArrayController,
    records: Sequence[TraceRecord],
    *,
    batched: bool = True,
) -> int:
    """Schedule every trace record on the controller's simulator.

    Arrival times are relative to the current simulated time.  Records
    whose ``lba`` exceeds the layout's capacity are wrapped modulo
    capacity (so one trace can drive arrays of different sizes).

    The trace is compiled (one ``map_batch`` for every address) and
    pumped through the batched executor; ``batched=False`` replays the
    same compiled stream through the scalar per-event path instead —
    identical simulation, per-request overhead.

    Returns the number of requests scheduled; run
    ``controller.sim.run()`` to execute.
    """
    compiled = compile_trace(controller.mapper, records)
    if batched:
        return schedule_compiled(controller, compiled)
    return schedule_compiled_scalar(controller, compiled)
