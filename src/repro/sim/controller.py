"""Array controller: executes logical reads/writes against a layout.

Timing semantics:

* normal read — one disk IO;
* small write — read-modify-write: read old data and old parity in
  parallel, then write new data and new parity in parallel (the classic
  4-IO RAID small write; parity-disk contention is exactly what the
  paper's Condition 2 is about);
* degraded read (failed data disk) — read every surviving unit of the
  stripe and XOR (the Condition 3 reconstruction path);
* degraded write — if the *data* disk failed, read the other data units
  and write parity only; if the *parity* disk failed, write data only.

Address translation goes through the mapping engine's flat tables.
Scalar submissions take the one-lookup path; :meth:`submit_read_batch`
and :meth:`submit_write_batch` translate whole address vectors with one
:meth:`AddressMapper.map_batch` call before fanning out disk IOs.  Bulk
traffic with timing (workload replay, trace-driven runs) should instead
be *compiled*: :mod:`repro.sim.compile` pre-maps a whole trace and
feeds the controller pre-planned requests (via :meth:`request_plan`)
with no per-event translation at all.

Content semantics are delegated to an optional :class:`DataPlane` and
applied atomically per request (batched writes on the healthy path),
keeping the timing engine and the correctness oracle independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.registry import get_mapper
from ..layouts import Layout
from ..obs.nullrec import NULL_RECORDER
from .dataplane import DataPlane
from .disk import Disk, DiskIO, DiskParameters
from .events import Simulator
from .stats import LatencyStats

__all__ = ["ArrayController", "RequestKind"]


RequestKind = str  # "read" | "write" | "degraded_read" | "degraded_write"


@dataclass(slots=True)
class _Request:
    """In-flight logical request (possibly multiple phases of disk IOs).

    Slotted and cursor-based (no ``phases.pop(0)`` list churn): the
    mixed read/write executor allocates one of these per request, so its
    footprint is on the compiled hot path.
    """

    kind: RequestKind
    start: float
    on_done: Callable[[float], None] | None
    remaining: int = 0
    phases: list[list[tuple[int, int, bool]]] = field(default_factory=list)
    phase_idx: int = 0


class ArrayController:
    """Maps logical unit requests onto disk IOs through a layout.

    Args:
        layout: the data layout to execute.
        sim: event engine (a fresh one is created if omitted).
        disk_params: service-time model for all disks.
        dataplane: attach a byte-level data plane (enables content
            verification at simulation cost).
        seed: data-plane fill seed.
        write_policy: ``"rmw"`` (default) issues the classic 4-IO
            read-modify-write small write; ``"write_through"`` models a
            controller that computes new parity from cached context and
            writes data + parity directly — every request becomes
            single-phase, which unlocks the analytic queue solver for
            mixed traces.
    """

    WRITE_POLICIES = ("rmw", "write_through")

    #: Observability sink + this controller's shard id within it.
    #: Class-level defaults keep the uninstrumented path free: engines
    #: test ``ctrl.obs.enabled`` once per batch and skip all recording.
    #: A fleet (or ``simulate_workload(recorder=...)``) overrides both
    #: per instance when metrics are requested.
    obs = NULL_RECORDER
    obs_shard = 0
    #: Label of the execution engine that last ran this controller's
    #: compiled traffic ("solver" / "eager" / "calendar" / "heap" /
    #: "windowed-*"), set by every engine entry point.  Not a dataclass
    #: field anywhere — reports surface it as a plain attribute so
    #: cross-engine report-equality comparisons stay byte-identical.
    last_engine: str | None = None

    def __init__(
        self,
        layout: Layout,
        *,
        sim: Simulator | None = None,
        disk_params: DiskParameters | None = None,
        dataplane: bool = False,
        seed: int = 0,
        write_policy: str = "rmw",
    ):
        layout.validate()
        if write_policy not in self.WRITE_POLICIES:
            raise ValueError(
                f"write_policy must be one of {self.WRITE_POLICIES}, "
                f"got {write_policy!r}"
            )
        self.write_policy = write_policy
        self.layout = layout
        self.sim = sim if sim is not None else Simulator()
        self.params = disk_params if disk_params is not None else DiskParameters()
        self.disks = [Disk(self.sim, d, self.params) for d in range(layout.v)]
        # Registry-shared mapping tables: a fleet of controllers over
        # equal layouts builds the flat tables once.
        self.mapper = get_mapper(layout)
        self.data = DataPlane(layout, seed=seed) if dataplane else None
        self.failed_disk: int | None = None
        self.latency: dict[RequestKind, LatencyStats] = {}
        # Per-kind bound record methods: completions are recorded with
        # one dict probe + one list append, no setdefault per request.
        self._lat_record: dict[RequestKind, Callable[[float], None]] = {}
        self.rejected_requests = 0
        # Content listeners for degraded writes that land on the failed
        # disk — an in-flight rebuild registers here so units it has
        # already recovered stay coherent with later foreground writes
        # (a real array directs those writes to the replacement disk).
        self._degraded_write_hooks: list[Callable[[int, np.ndarray], None]] = []
        # Content listeners for *every* data-unit write applied through
        # the per-request path — an in-flight volume migration registers
        # here so units it has already copied stay coherent on the
        # destination (a real array mirrors those writes during the
        # copy window).
        self._content_write_hooks: list[
            Callable[[int, int, int, np.ndarray], None]
        ] = []

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Fail one disk (single-fault model, like the paper's arrays).

        Raises:
            ValueError: if a disk has already failed or ``disk`` invalid.
        """
        if self.failed_disk is not None:
            raise ValueError("the single-parity array tolerates one failure")
        if not 0 <= disk < self.layout.v:
            raise ValueError(f"no disk {disk} in a {self.layout.v}-disk array")
        self.failed_disk = disk
        self.disks[disk].fail()

    def add_degraded_write_hook(
        self, hook: Callable[[int, np.ndarray], None]
    ) -> None:
        """Register ``hook(offset, new_contents)`` to observe every
        degraded write that changes what the failed disk should hold at
        ``offset`` — its data unit, or its parity unit when the stripe's
        parity sat on the failed disk (content semantics only; timing
        is unaffected)."""
        self._degraded_write_hooks.append(hook)

    def remove_degraded_write_hook(
        self, hook: Callable[[int, np.ndarray], None]
    ) -> None:
        """Unregister a degraded-write hook (no-op if absent)."""
        try:
            self._degraded_write_hooks.remove(hook)
        except ValueError:
            pass

    def add_content_write_hook(
        self, hook: Callable[[int, int, int, np.ndarray], None]
    ) -> None:
        """Register ``hook(stripe_id, disk, offset, payload)`` to
        observe every data-unit write applied through the per-request
        content path (content semantics only; timing is unaffected).
        Batch content scatters (:meth:`DataPlane.write_logical_batch`)
        bypass hooks — a migration diverts its traffic to the
        per-request path before relying on them."""
        self._content_write_hooks.append(hook)

    def remove_content_write_hook(
        self, hook: Callable[[int, int, int, np.ndarray], None]
    ) -> None:
        """Unregister a content-write hook (no-op if absent)."""
        try:
            self._content_write_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _record(self, req: _Request, when: float) -> None:
        rec = self._lat_record.get(req.kind)
        if rec is None:
            rec = self._lat_record[req.kind] = self.latency.setdefault(
                req.kind, LatencyStats()
            ).record
        lat = when - req.start
        rec(lat)
        obs = self.obs
        if obs.enabled:
            # Heap-path completions arrive one event at a time in
            # completion order (the event loop runs in time order), so
            # scalar recording preserves the recorder's fold contract.
            obs.record(self.obs_shard, req.kind, when, lat)
        if req.on_done is not None:
            req.on_done(when)

    def _issue_phase(self, req: _Request) -> None:
        i = req.phase_idx
        if i >= len(req.phases):
            self._record(req, self.sim.now)
            return
        phase = req.phases[i]
        failed = self.failed_disk
        if failed is not None and any(d == failed for d, _, _ in phase):
            # The disk died while this request was in flight (its plan
            # predates the failure).  The request is lost — the same
            # fate as one whose queued IO the failing disk dropped; a
            # real controller would retry it through the degraded path.
            return
        req.phase_idx = i + 1
        req.remaining = len(phase)

        def one_done(_when: float) -> None:
            req.remaining -= 1
            if req.remaining == 0:
                self._issue_phase(req)

        for disk, offset, is_write in phase:
            self.disks[disk].submit(
                DiskIO(offset=offset, is_write=is_write, on_complete=one_done)
            )

    # ------------------------------------------------------------------
    # Request planning (shared by the scalar and batch paths)
    # ------------------------------------------------------------------

    def _plan_read(
        self, disk: int, offset: int, stripe_id: int
    ) -> tuple[RequestKind, list[list[tuple[int, int, bool]]]]:
        if disk != self.failed_disk:
            return "read", [[(disk, offset, False)]]
        stripe = self.layout.stripes[stripe_id]
        return "degraded_read", [
            [(d, off, False) for d, off in stripe.units if d != self.failed_disk]
        ]

    def _write_mode(self, disk: int, parity_disk: int) -> str:
        """Classify a write against the failure state — the single
        source of truth for both IO-phase planning and data-plane
        content semantics: ``"normal"`` | ``"data_failed"`` |
        ``"parity_failed"``."""
        if self.failed_disk is None or (
            disk != self.failed_disk and parity_disk != self.failed_disk
        ):
            return "normal"
        return "data_failed" if disk == self.failed_disk else "parity_failed"

    @staticmethod
    def normal_write_phases(
        disk: int, offset: int, parity_disk: int, parity_off: int
    ) -> list[list[tuple[int, int, bool]]]:
        """The healthy small-write plan (read-modify-write: read old
        data and parity, then write both) — shared with the compiled
        executor, which builds it from batch-mapped parity arrays."""
        return [
            [(disk, offset, False), (parity_disk, parity_off, False)],
            [(disk, offset, True), (parity_disk, parity_off, True)],
        ]

    def _plan_write(
        self, disk: int, offset: int, stripe_id: int
    ) -> tuple[RequestKind, list[list[tuple[int, int, bool]]]]:
        stripe = self.layout.stripes[stripe_id]
        parity_disk, parity_off = stripe.parity_unit
        mode = self._write_mode(disk, parity_disk)
        write_through = self.write_policy == "write_through"
        if mode == "normal":
            if write_through:
                return "write", [
                    [(disk, offset, True), (parity_disk, parity_off, True)]
                ]
            return "write", self.normal_write_phases(
                disk, offset, parity_disk, parity_off
            )
        if mode == "data_failed":
            if write_through:
                # New parity comes from cached context: the surviving
                # data units need not be read back.
                return "degraded_write", [[(parity_disk, parity_off, True)]]
            other_data = [
                (d, off, False)
                for d, off in stripe.data_units()
                if d != self.failed_disk
            ]
            phases = (
                [other_data, [(parity_disk, parity_off, True)]]
                if other_data
                else [[(parity_disk, parity_off, True)]]
            )
            return "degraded_write", phases
        # Parity disk failed: no parity to maintain.
        return "degraded_write", [[(disk, offset, True)]]

    def _apply_write_dataplane(
        self, stripe_id: int, disk: int, offset: int, payload: np.ndarray
    ) -> None:
        assert self.data is not None
        stripe = self.layout.stripes[stripe_id]
        parity_disk, parity_off = stripe.parity_unit
        mode = self._write_mode(disk, parity_disk)
        if mode == "normal":
            self.data.small_write(stripe_id, disk, offset, payload)
        elif mode == "parity_failed":
            self.data.write_unit(disk, offset, payload)
            # No parity IO is issued (the parity disk is gone), but the
            # failed disk's *stored* parity is the rebuild oracle — keep
            # it current so a concurrent rebuild recovers the stripe's
            # true parity, not a pre-write snapshot.
            new_parity = self.data.stripe_parity(stripe_id)
            self.data.write_unit(parity_disk, parity_off, new_parity)
            for hook in self._degraded_write_hooks:
                hook(parity_off, new_parity)
        else:
            # Data disk failed: fold the new value into parity so a
            # later rebuild recovers it.
            self.data.write_unit(disk, offset, payload)
            self.data.write_unit(
                parity_disk, parity_off, self.data.stripe_parity(stripe_id)
            )
            for hook in self._degraded_write_hooks:
                hook(offset, payload)
        for hook in self._content_write_hooks:
            hook(stripe_id, disk, offset, payload)

    def _default_payload(self, lba: int) -> np.ndarray:
        assert self.data is not None
        return np.full(self.data.unit_words, lba + 1, dtype=np.uint64)

    def request_plan(
        self, is_read: bool, disk: int, offset: int, stripe_id: int
    ) -> tuple[RequestKind, list[list[tuple[int, int, bool]]]]:
        """Plan one pre-mapped request against the current failure state.

        The entry point for compiled traces: the caller already holds
        the ``map_batch`` translation, so planning is pure phase
        construction.  Returns ``(kind, phases)`` exactly as the scalar
        submission path would execute them.
        """
        if is_read:
            return self._plan_read(disk, offset, stripe_id)
        return self._plan_write(disk, offset, stripe_id)

    # ------------------------------------------------------------------
    # Scalar submission
    # ------------------------------------------------------------------

    def submit_read(
        self, lba: int, on_done: Callable[[float], None] | None = None
    ) -> RequestKind:
        """Issue a logical read; returns the request kind used."""
        pu = self.mapper.logical_to_physical(lba)
        kind, phases = self._plan_read(pu.disk, pu.offset, pu.stripe % self.layout.b)
        req = _Request(kind=kind, start=self.sim.now, on_done=on_done, phases=phases)
        self._issue_phase(req)
        return kind

    def submit_write(
        self,
        lba: int,
        data: np.ndarray | None = None,
        on_done: Callable[[float], None] | None = None,
    ) -> RequestKind:
        """Issue a logical write (read-modify-write); returns the kind."""
        pu = self.mapper.logical_to_physical(lba)
        sid = pu.stripe % self.layout.b
        kind, phases = self._plan_write(pu.disk, pu.offset, sid)
        if self.data is not None:
            payload = data if data is not None else self._default_payload(lba)
            self._apply_write_dataplane(sid, pu.disk, pu.offset, payload)
        req = _Request(kind=kind, start=self.sim.now, on_done=on_done, phases=phases)
        self._issue_phase(req)
        return kind

    # ------------------------------------------------------------------
    # Batched submission (one map_batch call per vector of addresses)
    # ------------------------------------------------------------------

    def submit_read_batch(
        self,
        lbas: Sequence[int] | np.ndarray,
        on_done: Callable[[float], None] | None = None,
    ) -> list[RequestKind]:
        """Issue a vector of logical reads through the batch mapper.

        Each address still becomes its own request (latency is tracked
        per request), but address translation is a single vectorized
        pass.  Returns the request kinds in order.
        """
        disks, offsets, stripes = self.mapper.map_batch(lbas, with_stripes=True)
        b = self.layout.b
        kinds: list[RequestKind] = []
        for disk, offset, gs in zip(
            disks.tolist(), offsets.tolist(), stripes.tolist()
        ):
            kind, phases = self._plan_read(disk, offset, gs % b)
            req = _Request(
                kind=kind, start=self.sim.now, on_done=on_done, phases=phases
            )
            self._issue_phase(req)
            kinds.append(kind)
        return kinds

    def submit_write_batch(
        self,
        lbas: Sequence[int] | np.ndarray,
        data: np.ndarray | None = None,
        on_done: Callable[[float], None] | None = None,
    ) -> list[RequestKind]:
        """Issue a vector of logical writes through the batch mapper.

        With a data plane attached and a healthy array, contents are
        applied with one batched read-modify-write scatter; degraded
        arrays fall back to the per-request content path.  Returns the
        request kinds in order.

        Raises:
            ValueError: if ``data`` is given with the wrong shape.
        """
        disks, offsets, stripes = self.mapper.map_batch(lbas, with_stripes=True)
        b = self.layout.b
        n = len(disks)
        if data is not None and (
            self.data is not None and data.shape != (n, self.data.unit_words)
        ):
            raise ValueError(
                f"batch data must have shape ({n}, {self.data.unit_words}), "
                f"got {data.shape}"
            )
        if self.data is not None:
            payloads = (
                data
                if data is not None
                else (
                    np.asarray(lbas, dtype=np.uint64).reshape(n, 1) + 1
                ).repeat(self.data.unit_words, axis=1)
            )
            if self.failed_disk is None:
                self.data.write_logical_batch(self.mapper, lbas, payloads)
            else:
                for i in range(n):
                    self._apply_write_dataplane(
                        int(stripes[i]) % b,
                        int(disks[i]),
                        int(offsets[i]),
                        payloads[i],
                    )
        kinds: list[RequestKind] = []
        for disk, offset, gs in zip(
            disks.tolist(), offsets.tolist(), stripes.tolist()
        ):
            kind, phases = self._plan_write(disk, offset, gs % b)
            req = _Request(
                kind=kind, start=self.sim.now, on_done=on_done, phases=phases
            )
            self._issue_phase(req)
            kinds.append(kind)
        return kinds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def per_disk_completed(self) -> list[int]:
        """Completed IOs per disk."""
        return [d.completed_ios for d in self.disks]

    def utilizations(self, elapsed: float | None = None) -> list[float]:
        """Per-disk busy fraction over ``elapsed`` (default: now)."""
        t = elapsed if elapsed is not None else self.sim.now
        return [d.utilization(t) for d in self.disks]
