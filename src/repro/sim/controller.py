"""Array controller: executes logical reads/writes against a layout.

Timing semantics:

* normal read — one disk IO;
* small write — read-modify-write: read old data and old parity in
  parallel, then write new data and new parity in parallel (the classic
  4-IO RAID small write; parity-disk contention is exactly what the
  paper's Condition 2 is about);
* degraded read (failed data disk) — read every surviving unit of the
  stripe and XOR (the Condition 3 reconstruction path);
* degraded write — if the *data* disk failed, read the other data units
  and write parity only; if the *parity* disk failed, write data only.

Content semantics are delegated to an optional :class:`DataPlane` and
applied atomically per request, keeping the timing engine and the
correctness oracle independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..layouts import AddressMapper, Layout
from .dataplane import DataPlane
from .disk import Disk, DiskIO, DiskParameters
from .events import Simulator
from .stats import LatencyStats

__all__ = ["ArrayController", "RequestKind"]


RequestKind = str  # "read" | "write" | "degraded_read" | "degraded_write"


@dataclass
class _Request:
    """In-flight logical request (possibly multiple phases of disk IOs)."""

    kind: RequestKind
    start: float
    on_done: Callable[[float], None] | None
    remaining: int = 0
    phases: list[list[tuple[int, int, bool]]] = field(default_factory=list)


class ArrayController:
    """Maps logical unit requests onto disk IOs through a layout.

    Args:
        layout: the data layout to execute.
        sim: event engine (a fresh one is created if omitted).
        disk_params: service-time model for all disks.
        dataplane: attach a byte-level data plane (enables content
            verification at simulation cost).
        seed: data-plane fill seed.
    """

    def __init__(
        self,
        layout: Layout,
        *,
        sim: Simulator | None = None,
        disk_params: DiskParameters | None = None,
        dataplane: bool = False,
        seed: int = 0,
    ):
        layout.validate()
        self.layout = layout
        self.sim = sim if sim is not None else Simulator()
        self.params = disk_params if disk_params is not None else DiskParameters()
        self.disks = [Disk(self.sim, d, self.params) for d in range(layout.v)]
        self.mapper = AddressMapper(layout)
        self.data = DataPlane(layout, seed=seed) if dataplane else None
        self.failed_disk: int | None = None
        self.latency: dict[RequestKind, LatencyStats] = {}
        self.rejected_requests = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Fail one disk (single-fault model, like the paper's arrays).

        Raises:
            ValueError: if a disk has already failed or ``disk`` invalid.
        """
        if self.failed_disk is not None:
            raise ValueError("the single-parity array tolerates one failure")
        if not 0 <= disk < self.layout.v:
            raise ValueError(f"no disk {disk} in a {self.layout.v}-disk array")
        self.failed_disk = disk
        self.disks[disk].fail()

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _record(self, req: _Request, when: float) -> None:
        self.latency.setdefault(req.kind, LatencyStats()).record(when - req.start)
        if req.on_done is not None:
            req.on_done(when)

    def _issue_phase(self, req: _Request) -> None:
        if not req.phases:
            self._record(req, self.sim.now)
            return
        phase = req.phases.pop(0)
        req.remaining = len(phase)

        def one_done(_when: float) -> None:
            req.remaining -= 1
            if req.remaining == 0:
                self._issue_phase(req)

        for disk, offset, is_write in phase:
            self.disks[disk].submit(
                DiskIO(offset=offset, is_write=is_write, on_complete=one_done)
            )

    def submit_read(
        self, lba: int, on_done: Callable[[float], None] | None = None
    ) -> RequestKind:
        """Issue a logical read; returns the request kind used."""
        pu = self.mapper.logical_to_physical(lba)
        stripe = self.layout.stripes[pu.stripe % self.layout.b]
        if pu.disk != self.failed_disk:
            kind: RequestKind = "read"
            phases = [[(pu.disk, pu.offset, False)]]
        else:
            kind = "degraded_read"
            phases = [
                [
                    (d, off, False)
                    for d, off in stripe.units
                    if d != self.failed_disk
                ]
            ]
        req = _Request(kind=kind, start=self.sim.now, on_done=on_done, phases=phases)
        self._issue_phase(req)
        return kind

    def submit_write(
        self,
        lba: int,
        data: np.ndarray | None = None,
        on_done: Callable[[float], None] | None = None,
    ) -> RequestKind:
        """Issue a logical write (read-modify-write); returns the kind."""
        pu = self.mapper.logical_to_physical(lba)
        stripe = self.layout.stripes[pu.stripe % self.layout.b]
        parity_disk, parity_off = stripe.parity_unit

        if self.failed_disk is None or (
            pu.disk != self.failed_disk and parity_disk != self.failed_disk
        ):
            kind: RequestKind = "write"
            phases = [
                [(pu.disk, pu.offset, False), (parity_disk, parity_off, False)],
                [(pu.disk, pu.offset, True), (parity_disk, parity_off, True)],
            ]
        elif pu.disk == self.failed_disk:
            kind = "degraded_write"
            other_data = [
                (d, off, False)
                for d, off in stripe.data_units()
                if d != self.failed_disk
            ]
            phases = (
                [other_data, [(parity_disk, parity_off, True)]]
                if other_data
                else [[(parity_disk, parity_off, True)]]
            )
        else:  # parity disk failed: no parity to maintain
            kind = "degraded_write"
            phases = [[(pu.disk, pu.offset, True)]]

        if self.data is not None:
            payload = (
                data
                if data is not None
                else np.full(self.data.unit_words, lba + 1, dtype=np.uint64)
            )
            sid = pu.stripe % self.layout.b
            if self.failed_disk is None or (
                pu.disk != self.failed_disk and parity_disk != self.failed_disk
            ):
                self.data.small_write(sid, pu.disk, pu.offset, payload)
            elif parity_disk == self.failed_disk:
                self.data.write_unit(pu.disk, pu.offset, payload)
            else:
                # Data disk failed: fold the new value into parity so a
                # later rebuild recovers it.
                self.data.write_unit(pu.disk, pu.offset, payload)
                pdisk, poff = parity_disk, parity_off
                self.data.write_unit(pdisk, poff, self.data.stripe_parity(sid))

        req = _Request(kind=kind, start=self.sim.now, on_done=on_done, phases=phases)
        self._issue_phase(req)
        return kind

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def per_disk_completed(self) -> list[int]:
        """Completed IOs per disk."""
        return [d.completed_ios for d in self.disks]

    def utilizations(self, elapsed: float | None = None) -> list[float]:
        """Per-disk busy fraction over ``elapsed`` (default: now)."""
        t = elapsed if elapsed is not None else self.sim.now
        return [d.utilization(t) for d in self.disks]
