"""Discrete-event simulation core.

A minimal but real event engine: a time-ordered heap of callbacks with
a monotonic tie-breaking sequence number (equal-time events fire in
schedule order, which keeps runs deterministic).

:func:`calendar_bucket_width` supports the calendar-queue executor in
:mod:`repro.sim.batchstep`: bucket widths are snapped to powers of two
so that bucket indexing (``t / width``) and bucket boundaries
(``(i + 1) * width``) are exact float operations — an event landing
exactly on a boundary is classified identically everywhere.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

__all__ = ["Simulator", "calendar_bucket_width"]


def calendar_bucket_width(hint: float) -> float:
    """Largest power of two not exceeding ``hint``.

    Multiplying or dividing an IEEE-754 double by a power of two only
    changes the exponent, so with a power-of-two bucket width both the
    bucket index of a timestamp and the bucket's end boundary are exact
    — no event can straddle a boundary because of rounding.

    Raises:
        ValueError: if ``hint`` is not a positive finite number.
    """
    if not math.isfinite(hint) or hint <= 0.0:
        raise ValueError(f"bucket width hint must be positive, got {hint}")
    mantissa, exponent = math.frexp(hint)  # hint = mantissa * 2**exponent
    del mantissa  # 0.5 <= mantissa < 1, so 2**(exponent-1) <= hint
    return 2.0 ** (exponent - 1)


class Simulator:
    """Event queue + simulation clock.

    Time is in milliseconds throughout the simulator (matching the
    disk-model parameters).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay``.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time`` (``>= now``).

        The absolute time is pushed exactly (not via ``now + (time -
        now)``, which can round), so precomputed timestamps — e.g. a
        compiled trace's arrival vector — fire at bit-exact times.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time} < now={self.now})"
            )
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def step(self) -> bool:
        """Fire the next event; return False if the queue is empty."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self.now = time
        self._processed += 1
        fn()
        return True

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Drain the queue, optionally stopping at simulated time
        ``until`` (the clock is left at ``until`` if events remain).

        Raises:
            RuntimeError: if ``max_events`` fire without draining
                (runaway-simulation guard).  The error reports how many
                events this run processed, the lifetime total, and the
                backlog, so a stuck simulation is diagnosable instead of
                looking like a silent stop.
        """
        # The pop/fire sequence is inlined (not delegated to step()):
        # one method call per event is measurable on multi-million-event
        # fleet runs.
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return
            if fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}: processed "
                    f"{fired} events this run ({self._processed} in total), "
                    f"{len(heap)} still pending at t={self.now:.3f} ms "
                    "— likely a runaway event loop or an undersized budget"
                )
            time, _, fn = pop(heap)
            self.now = time
            self._processed += 1
            fn()
            fired += 1

    @property
    def events_processed(self) -> int:
        """Total events fired so far."""
        return self._processed

    def pending(self) -> int:
        """Events currently queued."""
        return len(self._heap)
