"""Byte-level XOR data plane: the correctness oracle of the simulator.

Holds actual (random) contents for every unit of every disk as NumPy
``uint64`` words, performs the parity XOR arithmetic of RAID, and lets
tests verify bit-for-bit that a layout can reconstruct a failed disk —
Condition 1 made executable.

Timing and data are deliberately decoupled: the controller performs
data-plane operations atomically while the event engine accounts for
the IO time.  Interleaving semantics (e.g. torn RMW under concurrency)
are outside the paper's scope.
"""

from __future__ import annotations

import numpy as np

from ..layouts import Layout

__all__ = ["DataPlane"]


class DataPlane:
    """Unit contents + parity arithmetic for one layout iteration.

    Args:
        layout: the data layout.
        unit_words: 64-bit words per unit (content granularity).
        seed: RNG seed for the initial data fill.
    """

    def __init__(self, layout: Layout, *, unit_words: int = 8, seed: int = 0):
        self.layout = layout
        self.unit_words = unit_words
        rng = np.random.default_rng(seed)
        self.store = rng.integers(
            0,
            np.iinfo(np.uint64).max,
            size=(layout.v, layout.size, unit_words),
            dtype=np.uint64,
        )
        self.recompute_all_parity()

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def read_unit(self, disk: int, offset: int) -> np.ndarray:
        """Copy of one unit's contents."""
        return self.store[disk, offset].copy()

    def write_unit(self, disk: int, offset: int, data: np.ndarray) -> None:
        """Overwrite one unit.

        Raises:
            ValueError: if ``data`` has the wrong shape/dtype.
        """
        if data.shape != (self.unit_words,) or data.dtype != np.uint64:
            raise ValueError(
                f"unit data must be uint64[{self.unit_words}], got "
                f"{data.dtype}[{data.shape}]"
            )
        self.store[disk, offset] = data

    # ------------------------------------------------------------------
    # Parity arithmetic
    # ------------------------------------------------------------------

    def stripe_parity(self, stripe_id: int) -> np.ndarray:
        """XOR of the stripe's *data* units (what the parity unit must
        hold)."""
        stripe = self.layout.stripes[stripe_id]
        acc = np.zeros(self.unit_words, dtype=np.uint64)
        for d, off in stripe.data_units():
            acc ^= self.store[d, off]
        return acc

    def recompute_all_parity(self) -> None:
        """Write correct parity into every stripe (initialization /
        after bulk loads)."""
        for sid, stripe in enumerate(self.layout.stripes):
            pd, poff = stripe.parity_unit
            self.store[pd, poff] = self.stripe_parity(sid)

    def parity_consistent(self, stripe_id: int) -> bool:
        """Check one stripe's parity invariant."""
        stripe = self.layout.stripes[stripe_id]
        pd, poff = stripe.parity_unit
        return bool(np.array_equal(self.store[pd, poff], self.stripe_parity(stripe_id)))

    def all_parity_consistent(self) -> bool:
        """Check every stripe's parity invariant."""
        return all(self.parity_consistent(s) for s in range(self.layout.b))

    # ------------------------------------------------------------------
    # Writes and reconstruction
    # ------------------------------------------------------------------

    def small_write(self, stripe_id: int, disk: int, offset: int, data: np.ndarray) -> None:
        """Read-modify-write: update a data unit and patch the parity
        with ``new ^ old`` (the 4-IO small write the controller times)."""
        stripe = self.layout.stripes[stripe_id]
        pd, poff = stripe.parity_unit
        delta = self.store[disk, offset] ^ data
        self.store[disk, offset] = data
        self.store[pd, poff] ^= delta

    def reconstruct_unit(self, stripe_id: int, disk: int) -> np.ndarray:
        """Recover disk ``disk``'s unit of a stripe by XOR of the
        stripe's *other* units (Condition 1 in action).

        Raises:
            ValueError: if the stripe does not cross ``disk``.
        """
        stripe = self.layout.stripes[stripe_id]
        acc = np.zeros(self.unit_words, dtype=np.uint64)
        found = False
        for d, off in stripe.units:
            if d == disk:
                found = True
                continue
            acc ^= self.store[d, off]
        if not found:
            raise ValueError(f"stripe {stripe_id} has no unit on disk {disk}")
        return acc

    def snapshot_disk(self, disk: int) -> np.ndarray:
        """Copy of a full disk's contents (the rebuild oracle)."""
        return self.store[disk].copy()

    def reconstruct_disk(self, disk: int) -> np.ndarray:
        """Rebuild a whole disk's contents from the survivors, returning
        the reconstructed image (does not modify the store)."""
        image = np.zeros((self.layout.size, self.unit_words), dtype=np.uint64)
        for sid, stripe in enumerate(self.layout.stripes):
            for d, off in stripe.units:
                if d == disk:
                    image[off] = self.reconstruct_unit(sid, disk)
        return image
