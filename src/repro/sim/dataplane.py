"""Byte-level XOR data plane: the correctness oracle of the simulator.

Holds actual (random) contents for every unit of every disk as NumPy
``uint64`` words, performs the parity XOR arithmetic of RAID, and lets
tests verify bit-for-bit that a layout can reconstruct a failed disk —
Condition 1 made executable.

The unit store is one flat ``(v*size, words)`` buffer, so physical
units address it by ``disk * size + offset`` — the same flat-cell
convention as :class:`repro.layouts.AddressMapper`'s reverse tables —
and whole batches of logical reads/writes and full-array parity
rebuilds run as vectorized gathers/scatters instead of per-unit Python
loops.

Timing and data are deliberately decoupled: the controller performs
data-plane operations atomically while the event engine accounts for
the IO time.  Interleaving semantics (e.g. torn RMW under concurrency)
are outside the paper's scope.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layouts import AddressMapper, Layout

__all__ = ["DataPlane"]


class DataPlane:
    """Unit contents + parity arithmetic for one layout iteration.

    Args:
        layout: the data layout.
        unit_words: 64-bit words per unit (content granularity).
        seed: RNG seed for the initial data fill.
    """

    def __init__(self, layout: Layout, *, unit_words: int = 8, seed: int = 0):
        self.layout = layout
        self.unit_words = unit_words
        rng = np.random.default_rng(seed)
        self.store = rng.integers(
            0,
            np.iinfo(np.uint64).max,
            size=(layout.v, layout.size, unit_words),
            dtype=np.uint64,
        )
        # Flat (v*size, words) view sharing the store's memory: cell
        # ``disk * size + offset``.  Grouping stripes by size lets the
        # full-parity pass run as one XOR-reduce per group.
        self._flat = self.store.reshape(layout.v * layout.size, unit_words)
        self._stripe_groups: list[tuple[np.ndarray, np.ndarray]] = []
        by_size: dict[int, tuple[list[list[int]], list[int]]] = {}
        for stripe in layout.stripes:
            pd, poff = stripe.parity_unit
            cells = [d * layout.size + off for d, off in stripe.data_units()]
            data_rows, parity_cells = by_size.setdefault(len(cells), ([], []))
            data_rows.append(cells)
            parity_cells.append(pd * layout.size + poff)
        for data_rows, parity_cells in by_size.values():
            self._stripe_groups.append(
                (
                    np.asarray(data_rows, dtype=np.int64),
                    np.asarray(parity_cells, dtype=np.int64),
                )
            )
        self.recompute_all_parity()

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def read_unit(self, disk: int, offset: int) -> np.ndarray:
        """Copy of one unit's contents."""
        return self.store[disk, offset].copy()

    def write_unit(self, disk: int, offset: int, data: np.ndarray) -> None:
        """Overwrite one unit.

        Raises:
            ValueError: if ``data`` has the wrong shape/dtype.
        """
        if data.shape != (self.unit_words,) or data.dtype != np.uint64:
            raise ValueError(
                f"unit data must be uint64[{self.unit_words}], got "
                f"{data.dtype}[{data.shape}]"
            )
        self.store[disk, offset] = data

    # ------------------------------------------------------------------
    # Parity arithmetic
    # ------------------------------------------------------------------

    def stripe_parity(self, stripe_id: int) -> np.ndarray:
        """XOR of the stripe's *data* units (what the parity unit must
        hold)."""
        stripe = self.layout.stripes[stripe_id]
        acc = np.zeros(self.unit_words, dtype=np.uint64)
        for d, off in stripe.data_units():
            acc ^= self.store[d, off]
        return acc

    def recompute_all_parity(self) -> None:
        """Write correct parity into every stripe (initialization /
        after bulk loads) — one vectorized XOR-reduce per stripe-size
        group."""
        for data_rows, parity_cells in self._stripe_groups:
            self._flat[parity_cells] = np.bitwise_xor.reduce(
                self._flat[data_rows], axis=1
            )

    def parity_consistent(self, stripe_id: int) -> bool:
        """Check one stripe's parity invariant."""
        stripe = self.layout.stripes[stripe_id]
        pd, poff = stripe.parity_unit
        return bool(np.array_equal(self.store[pd, poff], self.stripe_parity(stripe_id)))

    def all_parity_consistent(self) -> bool:
        """Check every stripe's parity invariant (vectorized)."""
        for data_rows, parity_cells in self._stripe_groups:
            expect = np.bitwise_xor.reduce(self._flat[data_rows], axis=1)
            if not np.array_equal(self._flat[parity_cells], expect):
                return False
        return True

    # ------------------------------------------------------------------
    # Writes and reconstruction
    # ------------------------------------------------------------------

    def small_write(self, stripe_id: int, disk: int, offset: int, data: np.ndarray) -> None:
        """Read-modify-write: update a data unit and patch the parity
        with ``new ^ old`` (the 4-IO small write the controller times)."""
        stripe = self.layout.stripes[stripe_id]
        pd, poff = stripe.parity_unit
        delta = self.store[disk, offset] ^ data
        self.store[disk, offset] = data
        self.store[pd, poff] ^= delta

    # ------------------------------------------------------------------
    # Batched logical access (through the mapping engine)
    # ------------------------------------------------------------------

    def _check_mapper(self, mapper: AddressMapper) -> None:
        """The store models exactly one layout iteration.

        Raises:
            ValueError: if the mapper tiles multiple iterations (its
                offsets would fall outside the store) or belongs to a
                different geometry.
        """
        if mapper.iterations != 1:
            raise ValueError(
                f"data plane holds one layout iteration; mapper has "
                f"{mapper.iterations}"
            )
        if (mapper.layout.v, mapper.layout.size) != (
            self.layout.v,
            self.layout.size,
        ):
            raise ValueError("mapper geometry does not match the data plane")

    def read_logical_batch(
        self, mapper: AddressMapper, lbas: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Contents of a batch of logical data units, one gather.

        Returns a ``(len(lbas), unit_words)`` array in request order.

        Raises:
            ValueError: if the mapper does not match the store (see
                :meth:`_check_mapper`).
        """
        self._check_mapper(mapper)
        disks, offsets = mapper.map_batch(lbas)
        cells = disks * self.layout.size + offsets
        return self._flat[cells].copy()

    def write_logical_batch(
        self,
        mapper: AddressMapper,
        lbas: Sequence[int] | np.ndarray,
        data: np.ndarray,
    ) -> None:
        """Batched read-modify-write of logical data units.

        Applies ``data[i]`` to ``lbas[i]`` and patches every affected
        parity unit with the XOR delta — a scatter when all target
        units are distinct, falling back to sequential small writes
        when a batch writes the same unit twice (so last-write-wins
        semantics and parity stay exact).

        Raises:
            ValueError: if ``data`` is not ``uint64[len(lbas), words]``
                or the mapper does not match the store.
        """
        self._check_mapper(mapper)
        disks, offsets, stripes, par_disks, par_offsets = mapper.map_batch_parity(
            lbas
        )
        if data.shape != (len(disks), self.unit_words) or data.dtype != np.uint64:
            raise ValueError(
                f"batch data must be uint64[{len(disks)}, {self.unit_words}], "
                f"got {data.dtype}[{data.shape}]"
            )
        size = self.layout.size
        cells = disks * size + offsets
        if len(np.unique(cells)) != len(cells):
            for i, cell in enumerate(cells.tolist()):
                self.small_write(
                    int(stripes[i]),
                    cell // size,
                    cell % size,
                    data[i],
                )
            return
        par_cells = par_disks * size + par_offsets
        delta = self._flat[cells] ^ data
        self._flat[cells] = data
        np.bitwise_xor.at(self._flat, par_cells, delta)

    def reconstruct_unit(self, stripe_id: int, disk: int) -> np.ndarray:
        """Recover disk ``disk``'s unit of a stripe by XOR of the
        stripe's *other* units (Condition 1 in action).

        Raises:
            ValueError: if the stripe does not cross ``disk``.
        """
        stripe = self.layout.stripes[stripe_id]
        acc = np.zeros(self.unit_words, dtype=np.uint64)
        found = False
        for d, off in stripe.units:
            if d == disk:
                found = True
                continue
            acc ^= self.store[d, off]
        if not found:
            raise ValueError(f"stripe {stripe_id} has no unit on disk {disk}")
        return acc

    def snapshot_disk(self, disk: int) -> np.ndarray:
        """Copy of a full disk's contents (the rebuild oracle)."""
        return self.store[disk].copy()

    def reconstruct_disk(self, disk: int) -> np.ndarray:
        """Rebuild a whole disk's contents from the survivors, returning
        the reconstructed image (does not modify the store)."""
        image = np.zeros((self.layout.size, self.unit_words), dtype=np.uint64)
        for sid, stripe in enumerate(self.layout.stripes):
            for d, off in stripe.units:
                if d == disk:
                    image[off] = self.reconstruct_unit(sid, disk)
        return image
