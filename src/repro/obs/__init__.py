"""Deterministic observability: sim-clock metrics and trace spans.

The subsystem has three layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.recorder` — the instrumentation sink.  Engines,
  fleet serve paths, and orchestrators feed a
  :class:`MetricsRecorder` attached to each
  :class:`~repro.sim.ArrayController` (``ctrl.obs``); the default is
  the no-op :data:`NULL_RECORDER`, so uninstrumented runs pay nothing.
* :mod:`repro.obs.snapshot` — renders recorder state into snapshot
  JSONL rows (byte-identical across window sizes and worker counts)
  and a Prometheus text exposition.
* :mod:`repro.obs.trace` — derives span trees (scenario -> shard ->
  rebuild/migration -> phase) from the report payload and summarizes
  trace files for ``python -m repro trace``.

Everything is timestamped on the *simulated* clock, so two runs of the
same scenario produce identical files no matter the host, the worker
count, or the streaming window size.
"""

from .recorder import NULL_RECORDER, MetricsRecorder, NullRecorder
from .snapshot import build_rows, prometheus_text, render_metrics_jsonl
from .trace import (
    parse_trace_jsonl,
    render_trace_jsonl,
    spans_from_payload,
    summarize_trace,
)

__all__ = [
    "MetricsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "build_rows",
    "render_metrics_jsonl",
    "prometheus_text",
    "spans_from_payload",
    "render_trace_jsonl",
    "parse_trace_jsonl",
    "summarize_trace",
]
