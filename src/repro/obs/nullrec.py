"""The no-op recorder, in a dependency-free module.

``ArrayController`` (in :mod:`repro.sim`) carries :data:`NULL_RECORDER`
as its class-level default instrumentation sink, and
:mod:`repro.obs.recorder` needs :class:`repro.sim.stats.LatencyDigest`
— importing either package therefore reaches for the other.  Keeping
the null recorder here, with no imports at all, breaks that cycle: the
sim layer depends only on this leaf, and the real recorder re-exports
it for the public API.
"""

__all__ = ["NullRecorder", "NULL_RECORDER"]


class NullRecorder:
    """No-op recorder: the zero-overhead default instrumentation sink.

    ``enabled`` is False; engines gate their (vectorized) emission on
    it, so disabled runs never build sample arrays for the recorder.
    """

    enabled = False

    def feed(self, shard, kind, comps, lats):
        pass

    def record(self, shard, kind, t, lat):
        pass

    def arrivals(self, shard, times):
        pass

    def arrive(self, shard, t):
        pass

    def gauge(self, name, key, t, value):
        pass

    def count(self, name, n=1, volatile=False):
        pass

    def set_engine(self, shard, engine):
        pass

    def set_stat(self, shard, name, value):
        pass

    def reset_shard(self, shard):
        pass


#: Shared singleton — the class default for ``ArrayController.obs``.
NULL_RECORDER = NullRecorder()
