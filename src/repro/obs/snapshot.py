"""Snapshot rendering and export: recorder state -> JSONL / Prometheus.

A metrics file is a sequence of JSON rows (one per line):

* one ``{"type": "snapshot", ...}`` row per grid bucket, in bucket
  order — per-shard arrivals, completions, in-bucket latency
  summaries, in-flight depth, plus fleet-level rollups (events/s,
  balance ratio, admission occupancy, rebuild progress);
* one trailing ``{"type": "final", ...}`` row — cumulative per-shard
  latency summaries, the engine each shard's execution used, and the
  run-scope counters.

Every value is a pure function of (a) the recorder's grid-bucketed
state, whose per-bucket fold order the engines pin (see
``repro.obs.recorder``), and (b) the scenario report payload, which
the project's existing invariants already pin byte-identical across
engines, window sizes, and worker counts.  Rows are serialized with
``json.dumps(..., sort_keys=True)``, so the whole file inherits the
byte-identity contract.

The Prometheus exposition (:func:`prometheus_text`) is a point-in-time
export of the same state for scraping pipelines; it additionally
includes the *volatile* counters (window boundaries) that the JSONL
must exclude, so it is **not** covered by the cross-window-size
byte-identity contract.
"""

from __future__ import annotations

import json

from ..sim.stats import merge_summaries, summarize
from .recorder import MetricsRecorder

__all__ = [
    "build_rows",
    "render_metrics_jsonl",
    "prometheus_text",
]


def _admission_intervals(payload: dict) -> tuple[list, list]:
    """(active, queued) occupancy intervals of the shared admission
    budget, read off the report payload.

    Rebuilds hold a slot from ``started_at_ms`` for ``duration_ms`` and
    queue from ``failed_at_ms`` until admitted; migration copies hold a
    slot from ``started_at_ms`` to ``copied_at_ms`` and queue from
    ``requested_at_ms``.  Deriving occupancy from the (already
    byte-identical) report sidesteps instrumenting the admission gate's
    hot path entirely.
    """
    active: list[tuple[float, float]] = []
    queued: list[tuple[float, float]] = []
    for r in payload.get("rebuilds", ()):
        start = r["started_at_ms"]
        active.append((start, start + r["duration_ms"]))
        queued.append((r["failed_at_ms"], start))
    migration = payload.get("migration") or {}
    for m in migration.get("volumes", ()):
        if m.get("started_at_ms") is None:
            continue
        active.append((m["started_at_ms"], m["copied_at_ms"]))
        queued.append(
            (m["started_at_ms"] - m["admission_delay_ms"], m["started_at_ms"])
        )
    return active, queued


def _occupancy(intervals: list, t: float) -> int:
    """How many intervals ``[s, e)`` contain time ``t``."""
    return sum(1 for s, e in intervals if s <= t < e)


def _carry_forward(series: list, t: float):
    """Last gauge value recorded at or before ``t`` (None if none)."""
    value = None
    for when, v in series:
        if when <= t:
            value = v
    return value


def build_rows(
    recorder: MetricsRecorder, payload: dict | None = None
) -> list[dict]:
    """Render a recorder (plus an optional scenario report payload)
    into snapshot rows ready for JSONL serialization."""
    iv = recorder.interval_ms
    n_shards = recorder.shard_count()
    last = recorder.last_bucket()
    progress = recorder.gauge_series("rebuild_progress")
    scale = recorder.gauge_series("autoscale_shards")
    active_iv: list = []
    queued_iv: list = []
    if payload is not None:
        active_iv, queued_iv = _admission_intervals(payload)

    per_shard_lat = [recorder.latency_buckets(s) for s in range(n_shards)]
    per_shard_arr = [recorder.arrival_buckets(s) for s in range(n_shards)]
    cum_arrived = [0] * n_shards
    cum_completed = [0] * n_shards

    rows: list[dict] = []
    for b in range(last + 1):
        t_end = (b + 1) * iv
        shard_rows = []
        bucket_completed = 0
        bucket_arrived = 0
        for s in range(n_shards):
            arrived = per_shard_arr[s].get(b, 0)
            cum_arrived[s] += arrived
            bucket_arrived += arrived
            kinds = {}
            latency = {}
            completed = 0
            for kind in sorted(per_shard_lat[s]):
                digest = per_shard_lat[s][kind].get(b)
                if digest is None or not digest.count:
                    continue
                kinds[kind] = digest.count
                latency[kind] = summarize(digest)
                completed += digest.count
            cum_completed[s] += completed
            bucket_completed += completed
            shard_rows.append(
                {
                    "shard": s,
                    "arrived": arrived,
                    "completed": completed,
                    "inflight": cum_arrived[s] - cum_completed[s],
                    "kinds": kinds,
                    "latency": latency,
                }
            )
        low = min(cum_completed)
        fleet = {
            "arrived": bucket_arrived,
            "completed": bucket_completed,
            "events_per_s": bucket_completed / (iv / 1000.0),
            "inflight": sum(cum_arrived) - sum(cum_completed),
            "balance": (max(cum_completed) / low) if low else None,
            "admission_active": _occupancy(active_iv, t_end),
            "admission_queued": _occupancy(queued_iv, t_end),
        }
        frac = {
            str(key): value
            for key in sorted(progress)
            if (value := _carry_forward(progress[key], t_end)) is not None
        }
        if frac:
            fleet["rebuild_progress"] = frac
        shards_now = _carry_forward(scale.get(0, []), t_end)
        if shards_now is not None:
            fleet["autoscale_shards"] = int(shards_now)
        rows.append(
            {
                "type": "snapshot",
                "seq": b,
                "t_ms": t_end,
                "interval_ms": iv,
                "fleet": fleet,
                "shards": shard_rows,
            }
        )

    totals = []
    for s in range(n_shards):
        latency = {}
        for kind in sorted(per_shard_lat[s]):
            buckets = per_shard_lat[s][kind]
            parts = [buckets[b] for b in sorted(buckets)]
            if parts:
                latency[kind] = merge_summaries(parts)
        row = {
            "shard": s,
            "arrived": sum(per_shard_arr[s].values()),
            "completed": sum(
                d.count
                for buckets in per_shard_lat[s].values()
                for d in buckets.values()
            ),
            "latency": latency,
        }
        stats = recorder.stats(s)
        if stats:
            row["stats"] = stats
        totals.append(row)
    rows.append(
        {
            "type": "final",
            "t_ms": (last + 1) * iv,
            "interval_ms": iv,
            "engine": {
                str(s): recorder.engines[s]
                for s in sorted(recorder.engines)
            },
            "counters": recorder.counters(),
            "totals": {
                "arrived": sum(t["arrived"] for t in totals),
                "completed": sum(t["completed"] for t in totals),
                "shards": totals,
            },
        }
    )
    return rows


def render_metrics_jsonl(rows: list[dict]) -> str:
    """Serialize snapshot rows as sorted-key JSONL (the byte-identity
    form the determinism tests compare)."""
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(
    recorder: MetricsRecorder, payload: dict | None = None
) -> str:
    """Prometheus text exposition of the recorder's cumulative state.

    Families (all prefixed ``repro_``): per-shard/kind completion
    counts and latency summary stats, per-shard arrivals, run-scope
    counters (including the volatile window-boundary counts), engine
    labels as an info metric, and — when a payload is given — the
    report's end-state throughput and shard balance.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str, samples: list) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            label_str = ",".join(
                f'{k}="{_prom_escape(str(v))}"' for k, v in labels
            )
            rendered = f"{{{label_str}}}" if label_str else ""
            lines.append(f"{name}{rendered} {value}")

    n_shards = recorder.shard_count()
    completed = []
    latency = []
    for s in range(n_shards):
        for kind in sorted(recorder.latency_buckets(s)):
            buckets = recorder.latency_buckets(s)[kind]
            parts = [buckets[b] for b in sorted(buckets)]
            if not parts:
                continue
            summary = merge_summaries(parts)
            labels = (("shard", s), ("kind", kind))
            completed.append((labels, int(summary["count"])))
            for stat in ("mean", "p50", "p95", "max"):
                latency.append(
                    (labels + (("stat", stat),), summary[stat])
                )
    family(
        "repro_requests_completed_total",
        "counter",
        "Requests completed, by shard and kind.",
        completed,
    )
    family(
        "repro_latency_ms",
        "gauge",
        "End-to-end latency summary statistics (sim milliseconds).",
        latency,
    )
    family(
        "repro_requests_arrived_total",
        "counter",
        "Requests routed to each shard.",
        [
            ((("shard", s),), sum(recorder.arrival_buckets(s).values()))
            for s in range(n_shards)
            if recorder.arrival_buckets(s)
        ],
    )
    counters = dict(recorder.counters())
    counters.update(recorder.counters(volatile=True))
    family(
        "repro_events_total",
        "counter",
        "Run-scope instrumentation counters, by event name.",
        [((("event", k),), v) for k, v in sorted(counters.items())],
    )
    family(
        "repro_engine_info",
        "gauge",
        "Execution engine selected per shard (value is always 1).",
        [
            ((("shard", s), ("engine", recorder.engines[s])), 1)
            for s in sorted(recorder.engines)
        ],
    )
    if payload is not None:
        fleet = payload["fleet"]
        family(
            "repro_fleet_throughput_rps",
            "gauge",
            "Completed requests per simulated second, whole run.",
            [((), fleet["throughput_rps"])],
        )
        if fleet.get("shard_balance") is not None:
            family(
                "repro_fleet_shard_balance",
                "gauge",
                "Max/min per-shard scheduled-request ratio.",
                [((), fleet["shard_balance"])],
            )
    return "\n".join(lines) + "\n"
