"""Trace spans: scenario -> shard -> rebuild / migration phase trees.

Spans are derived **entirely from the scenario report payload** — the
orchestrators already record every phase boundary on the simulated
clock (failure time, rebuild admission and completion, migration
request/copy/cutover), and the payload carrying them is pinned
byte-identical across engines, window sizes, and worker counts by the
project's report-equality invariants.  Deriving rather than
instrumenting makes the trace file inherit that contract for free: no
span ever depends on execution strategy, only on simulated outcomes.

A trace file is JSONL, one span per line, in a canonical order
(scenario, shards ascending, rebuilds by array, migrations by volume,
each followed by its phase children).  Every span carries::

    {"span": <type>, "id": <unique>, "parent": <id | null>,
     "start_ms": <sim time>, "end_ms": <sim time>, ...attrs}

``python -m repro trace FILE`` renders the summary
(:func:`summarize_trace`).
"""

from __future__ import annotations

import json

__all__ = [
    "spans_from_payload",
    "render_trace_jsonl",
    "parse_trace_jsonl",
    "summarize_trace",
]


def _span(
    span: str,
    span_id: str,
    parent: str | None,
    start: float,
    end: float,
    **attrs,
) -> dict:
    row = {
        "span": span,
        "id": span_id,
        "parent": parent,
        "start_ms": start,
        "end_ms": end,
    }
    row.update(attrs)
    return row


def spans_from_payload(payload: dict) -> list[dict]:
    """Build the span tree for one scenario report payload."""
    fleet = payload["fleet"]
    duration = fleet["duration_ms"]
    engines = payload.get("engine_per_shard") or []
    spans = [
        _span(
            "scenario",
            "scenario",
            None,
            0.0,
            duration,
            shards=fleet["shards"],
            scheduled=fleet["scheduled"],
            completed=fleet["completed"],
            passed=payload["passed"],
        )
    ]
    for s in range(fleet["shards"]):
        spans.append(
            _span(
                "shard",
                f"shard:{s}",
                "scenario",
                0.0,
                duration,
                shard=s,
                scheduled=fleet["per_shard_scheduled"][s],
                engine=engines[s] if s < len(engines) else None,
            )
        )
    for r in payload.get("rebuilds", ()):
        array = r["array"]
        rid = f"rebuild:{array}"
        failed = r["failed_at_ms"]
        started = r["started_at_ms"]
        end = started + r["duration_ms"]
        spans.append(
            _span(
                "rebuild",
                rid,
                f"shard:{array}",
                failed,
                end,
                array=array,
                failed_disk=r["failed_disk"],
                stripes_rebuilt=r["stripes_rebuilt"],
                data_verified=r["data_verified"],
            )
        )
        spans.append(
            _span("rebuild_wait", f"{rid}/wait", rid, failed, started)
        )
        spans.append(
            _span("rebuild_run", f"{rid}/run", rid, started, end)
        )
    migration = payload.get("migration") or {}
    for m in migration.get("volumes", ()):
        volume = m["volume"]
        mid = f"migration:{volume}"
        requested = m.get("requested_at_ms")
        started = m.get("started_at_ms")
        copied = m.get("copied_at_ms")
        cutover = m.get("cutover_at_ms")
        if started is None or requested is None:
            # Older payloads without absolute timestamps: reconstruct
            # nothing rather than guess.
            continue
        spans.append(
            _span(
                "migration",
                mid,
                "scenario",
                requested,
                cutover,
                volume=volume,
                source=m["source"],
                dest=m["dest"],
                units_copied=m["units_copied"],
                held_requests=m["held_requests"],
                forwarded_writes=m["forwarded_writes"],
                data_verified=m["data_verified"],
            )
        )
        spans.append(
            _span("migration_wait", f"{mid}/wait", mid, requested, started)
        )
        spans.append(
            _span("migration_copy", f"{mid}/copy", mid, started, copied)
        )
        spans.append(
            _span("migration_drain", f"{mid}/drain", mid, copied, cutover)
        )
    autoscale = payload.get("autoscale") or {}
    for ev in autoscale.get("events", ()):
        seq = ev["seq"]
        aid = f"autoscale:{seq}"
        start = ev["t_ms"]
        end = ev.get("converged_at_ms")
        spans.append(
            _span(
                "autoscale",
                aid,
                "scenario",
                start,
                end if end is not None else start,
                action=ev["action"],
                reason=ev["reason"],
                from_shards=ev["from_shards"],
                to_shards=ev["to_shards"],
                planned_moves=ev["planned_moves"],
                completed_moves=ev["completed_moves"],
                all_verified=ev["all_verified"],
            )
        )
        for m in ev.get("volumes", ()):
            requested = m.get("requested_at_ms")
            started = m.get("started_at_ms")
            copied = m.get("copied_at_ms")
            cutover = m.get("cutover_at_ms")
            if requested is None or started is None:
                continue
            vid = f"{aid}/vol:{m['volume']}"
            spans.append(
                _span(
                    "migration",
                    vid,
                    aid,
                    requested,
                    cutover,
                    volume=m["volume"],
                    source=m["source"],
                    dest=m["dest"],
                    units_copied=m["units_copied"],
                    held_requests=m["held_requests"],
                    forwarded_writes=m["forwarded_writes"],
                    data_verified=m["data_verified"],
                )
            )
            spans.append(
                _span(
                    "migration_wait", f"{vid}/wait", vid, requested, started
                )
            )
            spans.append(
                _span("migration_copy", f"{vid}/copy", vid, started, copied)
            )
            spans.append(
                _span("migration_drain", f"{vid}/drain", vid, copied, cutover)
            )
    return spans


def render_trace_jsonl(spans: list[dict]) -> str:
    """Serialize spans as sorted-key JSONL (the byte-identity form)."""
    return "".join(json.dumps(s, sort_keys=True) + "\n" for s in spans)


def parse_trace_jsonl(text: str) -> list[dict]:
    """Parse a trace file back into span rows.

    Raises:
        ValueError: with the offending line number when a line is not
            valid JSON (a truncated write leaves a partial last line)
            or is not a span object.
    """
    spans: list[dict] = []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {i} is not valid JSON ({exc.msg}) — truncated or "
                "corrupt trace file?"
            ) from exc
        if not isinstance(row, dict) or "span" not in row:
            raise ValueError(
                f"line {i} is not a span object — not a trace file?"
            )
        spans.append(row)
    return spans


def _phase_stats(spans: list[dict], span_type: str) -> dict | None:
    rows = [s for s in spans if s["span"] == span_type]
    if not rows:
        return None
    durations = [s["end_ms"] - s["start_ms"] for s in rows]
    return {
        "count": len(rows),
        "total_ms": sum(durations),
        "mean_ms": sum(durations) / len(durations),
        "max_ms": max(durations),
    }


def summarize_trace(
    spans: list[dict],
    metrics_rows: list[dict] | None = None,
    *,
    runtime: dict | None = None,
) -> str:
    """Human-readable trace summary: per-phase durations, rebuild and
    migration timelines, and (when metrics rows are supplied) the
    worst-shard balance over time.

    ``runtime`` (a report payload's warm-runtime stats section — see
    :class:`repro.service.RuntimeStats`) appends a warm-runtime line:
    pool reuse, compile-cache hit rate, resident shared memory, and the
    IPC bytes the digest/shm transports kept off the pickle channel.
    Spans never carry these — trace files must stay byte-identical
    across worker counts and cold/warm serves."""
    lines: list[str] = []
    root = next((s for s in spans if s["span"] == "scenario"), None)
    if root is not None:
        lines.append(
            f"scenario: {root['shards']} shards, "
            f"{root['completed']}/{root['scheduled']} requests over "
            f"{root['end_ms']:.0f} ms, passed={root['passed']}"
        )
    shards = [s for s in spans if s["span"] == "shard"]
    if shards:
        lines.append("shards:")
        for s in sorted(shards, key=lambda s: s["shard"]):
            engine = s.get("engine") or "-"
            lines.append(
                f"  shard {s['shard']}: {s['scheduled']} scheduled, "
                f"engine {engine}"
            )
    rebuilds = [s for s in spans if s["span"] == "rebuild"]
    if rebuilds:
        lines.append("rebuild timeline:")
        for r in sorted(rebuilds, key=lambda s: s["array"]):
            rid = r["id"]
            wait = next(s for s in spans if s["id"] == f"{rid}/wait")
            run = next(s for s in spans if s["id"] == f"{rid}/run")
            lines.append(
                f"  array {r['array']} disk {r['failed_disk']}: failed at "
                f"{r['start_ms']:.0f} ms, waited "
                f"{wait['end_ms'] - wait['start_ms']:.0f} ms, rebuilt "
                f"{r['stripes_rebuilt']} stripes in "
                f"{run['end_ms'] - run['start_ms']:.0f} ms "
                f"(verified={r['data_verified']})"
            )
    autoscales = [s for s in spans if s["span"] == "autoscale"]
    if autoscales:
        lines.append("autoscale timeline:")
        for a in sorted(autoscales, key=lambda s: s["start_ms"]):
            lines.append(
                f"  t={a['start_ms']:.0f} ms: {a['action']} "
                f"{a['from_shards']} -> {a['to_shards']} ({a['reason']}), "
                f"{a['completed_moves']}/{a['planned_moves']} moves, "
                f"converged at {a['end_ms']:.0f} ms "
                f"(verified={a['all_verified']})"
            )
    migrations = [s for s in spans if s["span"] == "migration"]
    if migrations:
        lines.append("migration timeline:")
        for m in sorted(migrations, key=lambda s: s["volume"]):
            mid = m["id"]
            phases = {
                phase: next(s for s in spans if s["id"] == f"{mid}/{phase}")
                for phase in ("wait", "copy", "drain")
            }
            rendered = ", ".join(
                f"{phase} {p['end_ms'] - p['start_ms']:.0f} ms"
                for phase, p in phases.items()
            )
            lines.append(
                f"  volume {m['volume']}: {m['source']} -> {m['dest']} "
                f"({m['units_copied']} units): {rendered} "
                f"(verified={m['data_verified']})"
            )
    lines.append("phase durations:")
    for phase in (
        "rebuild_wait",
        "rebuild_run",
        "migration_wait",
        "migration_copy",
        "migration_drain",
    ):
        stats = _phase_stats(spans, phase)
        if stats is None:
            continue
        lines.append(
            f"  {phase:<16} n={stats['count']} "
            f"mean {stats['mean_ms']:.1f} ms  max {stats['max_ms']:.1f} ms  "
            f"total {stats['total_ms']:.1f} ms"
        )
    if metrics_rows:
        snapshots = [r for r in metrics_rows if r.get("type") == "snapshot"]
        timed = [
            (r["t_ms"], r["fleet"]["balance"])
            for r in snapshots
            if r["fleet"].get("balance") is not None
        ]
        if timed:
            worst_t, worst = max(timed, key=lambda tv: tv[1])
            lines.append("shard balance over time (max/min completed):")
            for t, v in timed:
                marker = "  <- worst" if (t, v) == (worst_t, worst) else ""
                lines.append(f"  t={t:>10.1f} ms  balance {v:.3f}{marker}")
            lines.append(
                f"  worst balance {worst:.3f} at {worst_t:.1f} ms"
            )
    if runtime:
        lines.append(
            "warm runtime: "
            f"{runtime.get('runs', 0)} run(s), pool "
            f"{runtime.get('pool_warm_hits', 0)} warm / "
            f"{runtime.get('pool_cold_boots', 0)} cold, compile cache "
            f"{runtime.get('compile_cache_hits', 0)} hit(s) / "
            f"{runtime.get('compile_cache_misses', 0)} miss(es), "
            f"{runtime.get('shm_bytes', 0)} shm bytes resident, "
            f"~{runtime.get('ipc_bytes_avoided', 0)} IPC bytes avoided"
        )
    return "\n".join(lines)
