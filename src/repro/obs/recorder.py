"""Sim-clock metrics recording: the instrumentation half of ``repro.obs``.

Two recorders share one interface:

* :data:`NULL_RECORDER` — the default on every
  :class:`repro.sim.ArrayController`.  Every method is a no-op and
  ``enabled`` is False, so uninstrumented runs pay a single attribute
  test per *batch* (the engines check ``ctrl.obs.enabled`` once before
  their vectorized emission, never per request).
* :class:`MetricsRecorder` — folds instrumentation events onto a fixed
  sim-time grid of ``interval_ms`` buckets.  Everything it stores is a
  pure function of per-(shard, kind) event streams that the engines
  already emit deterministically, so its contents — and the snapshot
  rows rendered from them — are byte-identical across window sizes and
  worker counts.

Why bucketing (not raw event logs) keeps the byte-identity invariant:

* **Latency samples** arrive through the same drain contract the
  digests use: per (shard, kind), every engine emits samples in
  completion-sorted order, and windowed feeds emit prefixes of exactly
  the one-shot order.  Folding each sample into the
  :class:`~repro.sim.stats.LatencyDigest` of its completion-time
  bucket therefore performs the identical left-to-right float fold per
  (shard, kind, bucket) no matter how the stream was chunked.
* **Arrivals** are a pure function of the workload stream, bucketed
  with one vectorized ``bincount`` per routed slice.
* **Gauges** (rebuild progress) are recorded at simulated event times
  that the parallel runner's decomposition proves identical to the
  serial run's.
* **Run counters** are whole-run totals.  Counters marked *volatile*
  (window boundaries — their count depends on ``--window`` by
  definition) are excluded from the snapshot JSONL and surfaced only
  in the Prometheus exposition.

Worker processes record into their own ``MetricsRecorder`` and the
parent merges them with :meth:`MetricsRecorder.absorb`: per-shard state
is disjoint across workers (placement merge), fleet-scope counters
add.
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.stats import LatencyDigest, bucket_keys_array
from .nullrec import NULL_RECORDER, NullRecorder

__all__ = ["MetricsRecorder", "NullRecorder", "NULL_RECORDER"]


class MetricsRecorder:
    """Grid-bucketed metrics accumulator on the simulated clock.

    Args:
        interval_ms: snapshot grid width (sim milliseconds).  Bucket
            ``b`` covers ``[b * interval_ms, (b + 1) * interval_ms)``.
        shards: minimum shard count the snapshot rows cover (rows grow
            to the highest shard id actually observed, e.g. when a
            reshape adds arrays mid-run).
    """

    enabled = True

    def __init__(self, interval_ms: float, shards: int = 1) -> None:
        if interval_ms <= 0:
            raise ValueError(
                f"metrics interval must be > 0 ms, got {interval_ms}"
            )
        self.interval_ms = float(interval_ms)
        self.shards = int(shards)
        #: shard -> kind -> bucket -> LatencyDigest (completion-time
        #: bucketed latency samples, completion order per bucket).
        self._lat: dict[int, dict[str, dict[int, LatencyDigest]]] = {}
        #: shard -> bucket -> arrival count.
        self._arrived: dict[int, dict[int, int]] = {}
        #: name -> key -> [(sim_time, value), ...] in record order.
        self._gauges: dict[str, dict[int, list[tuple[float, float]]]] = {}
        #: run-scope counters (reported in the final snapshot row).
        self._counters: dict[str, int] = {}
        #: run-scope counters excluded from the snapshot JSONL (their
        #: values legitimately depend on the window size).
        self._volatile: dict[str, int] = {}
        #: shard -> engine label actually used for its execution.
        self.engines: dict[int, str] = {}
        #: shard -> name -> end-of-run scalar stats (e.g. cumulative
        #: disk queue delay, which the engines accumulate bit-exactly).
        self._stats: dict[int, dict[str, float]] = {}

    # -- sample ingestion ------------------------------------------------

    def feed(self, shard: int, kind: str, comps, lats) -> None:
        """Fold a batch of completed requests into completion-time
        buckets.

        ``comps`` must be non-decreasing (the engines' drain contract:
        samples are emitted completion-sorted), so each bucket's
        samples form one contiguous slice and the per-bucket digest
        fold order equals the one-shot completion order.
        """
        n = len(lats)
        if not n:
            return
        comps = np.asarray(comps, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        # floor(t / interval) — same grid function as the scalar paths
        # (record/arrive); division + floor is one vectorized pass
        # where floor_divide would pay a per-element correction step.
        buckets = np.floor(comps / self.interval_ms).astype(np.int64)
        # One whole-batch histogram-key pass: the per-bucket slices
        # below reuse views of it instead of paying ~n_buckets small
        # vectorized calls.
        keys = bucket_keys_array(lats)
        per_kind = self._lat.setdefault(shard, {}).setdefault(kind, {})
        first = int(buckets[0])
        if first == int(buckets[-1]):
            digest = per_kind.get(first)
            if digest is None:
                digest = per_kind[first] = LatencyDigest()
            digest.extend_keyed(lats, keys)
            return
        cuts = np.flatnonzero(buckets[1:] != buckets[:-1]) + 1
        start = 0
        for stop in list(cuts) + [n]:
            b = int(buckets[start])
            digest = per_kind.get(b)
            if digest is None:
                digest = per_kind[b] = LatencyDigest()
            digest.extend_keyed(lats[start:stop], keys[start:stop])
            start = stop

    def record(self, shard: int, kind: str, t: float, lat: float) -> None:
        """Fold one completed request (heap/calendar engines, which see
        completions one event at a time)."""
        per_kind = self._lat.setdefault(shard, {}).setdefault(kind, {})
        b = math.floor(t / self.interval_ms)
        digest = per_kind.get(b)
        if digest is None:
            digest = per_kind[b] = LatencyDigest()
        digest.record(lat)

    def arrivals(self, shard: int, times) -> None:
        """Bucket a routed slice's arrival times (vectorized)."""
        if not len(times):
            return
        buckets = np.floor(
            np.asarray(times, dtype=np.float64) / self.interval_ms
        ).astype(np.int64)
        # bincount beats unique here (no sort); offsetting by the
        # slice's first bucket keeps the dense array one slice wide.
        lo = int(buckets.min())
        counts = np.bincount(buckets - lo)
        d = self._arrived.setdefault(shard, {})
        for b in np.flatnonzero(counts).tolist():
            d[b + lo] = d.get(b + lo, 0) + int(counts[b])

    def arrive(self, shard: int, t: float) -> None:
        """Bucket one arrival (per-request dispatch paths, e.g. traffic
        diverted to a migration coordinator)."""
        d = self._arrived.setdefault(shard, {})
        b = math.floor(t / self.interval_ms)
        d[b] = d.get(b, 0) + 1

    # -- gauges / counters / engine labels -------------------------------

    def gauge(self, name: str, key: int, t: float, value: float) -> None:
        """Record a gauge observation at sim time ``t`` (last value at
        or before a bucket's end wins in the snapshot; earlier values
        carry forward)."""
        self._gauges.setdefault(name, {}).setdefault(key, []).append(
            (float(t), float(value))
        )

    def count(self, name: str, n: int = 1, volatile: bool = False) -> None:
        """Bump a run-scope counter.  ``volatile`` counters (window
        boundaries) appear only in the Prometheus exposition — their
        values depend on the window size, which the snapshot JSONL's
        byte-identity contract forbids."""
        d = self._volatile if volatile else self._counters
        d[name] = d.get(name, 0) + n

    def set_engine(self, shard: int, engine: str) -> None:
        """Label the engine a shard's execution actually used."""
        self.engines[shard] = engine

    def set_stat(self, shard: int, name: str, value: float) -> None:
        """Record an end-of-run per-shard scalar (reported in the final
        snapshot row).  Only use values the execution engines pin
        bit-exactly (disk accumulators), or byte-identity breaks."""
        self._stats.setdefault(shard, {})[name] = float(value)

    def reset_shard(self, shard: int) -> None:
        """Drop a shard's samples and arrivals — the windowed eager
        tier calls this when a tie abort discards its results and the
        heap pump replays the shard's stream from scratch."""
        self._lat.pop(shard, None)
        self._arrived.pop(shard, None)

    # -- merge (parallel workers) ----------------------------------------

    def absorb(self, other: "MetricsRecorder") -> None:
        """Merge a worker recorder into this one.

        Per-shard state (samples, arrivals, engines) is disjoint across
        workers — each shard executes in exactly one group — so it
        merges by placement; run counters and gauges add/extend.
        """
        for shard, kinds in other._lat.items():
            self._lat[shard] = kinds
        for shard, arr in other._arrived.items():
            self._arrived[shard] = arr
        for name, keys in other._gauges.items():
            mine = self._gauges.setdefault(name, {})
            for key, series in keys.items():
                mine.setdefault(key, []).extend(series)
        for name, n in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + n
        for name, n in other._volatile.items():
            self._volatile[name] = self._volatile.get(name, 0) + n
        self.engines.update(other.engines)
        for shard, stats in other._stats.items():
            self._stats.setdefault(shard, {}).update(stats)
        self.shards = max(self.shards, other.shards)

    # -- render helpers (used by repro.obs.snapshot) ----------------------

    def shard_count(self) -> int:
        """Shards the snapshot rows must cover: the configured floor or
        the highest shard id observed, whichever is larger."""
        seen = [self.shards - 1]
        seen.extend(self._lat)
        seen.extend(self._arrived)
        seen.extend(self.engines)
        seen.extend(self._stats)
        return max(seen) + 1

    def last_bucket(self) -> int:
        """Highest grid bucket holding any observation (-1 if none)."""
        last = -1
        for kinds in self._lat.values():
            for buckets in kinds.values():
                if buckets:
                    last = max(last, max(buckets))
        for arr in self._arrived.values():
            if arr:
                last = max(last, max(arr))
        for keys in self._gauges.values():
            for series in keys.values():
                for t, _ in series:
                    last = max(last, math.floor(t / self.interval_ms))
        return last

    def counters(self, volatile: bool = False) -> dict[str, int]:
        """Run-scope counters (sorted); ``volatile=True`` returns the
        exposition-only set."""
        d = self._volatile if volatile else self._counters
        return dict(sorted(d.items()))

    def latency_buckets(
        self, shard: int
    ) -> dict[str, dict[int, LatencyDigest]]:
        """A shard's per-kind completion-bucketed digests."""
        return self._lat.get(shard, {})

    def arrival_buckets(self, shard: int) -> dict[int, int]:
        """A shard's per-bucket arrival counts."""
        return self._arrived.get(shard, {})

    def stats(self, shard: int) -> dict[str, float]:
        """A shard's end-of-run scalar stats (sorted by name)."""
        return dict(sorted(self._stats.get(shard, {}).items()))

    def gauge_series(self, name: str) -> dict[int, list[tuple[float, float]]]:
        """A gauge's per-key observation series, in record order."""
        return self._gauges.get(name, {})
