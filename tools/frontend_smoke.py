"""Warm front-end smoke (``make smoke-frontend``).

End-to-end gate on the serving path as users reach it: start
``python -m repro serve --listen`` with a 2-process worker pool in a
real subprocess, submit the same request stream twice (chunked, over
the socket), and require

* the first (cold) served report to be canonically identical to the
  same stream run through ``run_fleet_scenario`` in this process,
* the second (warm) served report to be canonically identical to the
  first — the pool reuse and compiled-artifact cache hit that the
  warm runtime exists for must not change a byte of the report,
* the front-end's ``ping`` stats to prove the warmth actually
  happened (``pool_warm_hits >= 1``, ``compile_cache_hits >= 1``),
* a clean shutdown: exit code 0, no leftover
  ``/dev/shm/repro_wrt_<pid>_*`` segments from the server process,
  and no ``resource_tracker`` warnings or tracebacks on its stderr.

The summary artifact (``BENCH_frontend_smoke.json``) rides the CI
``BENCH_*.json`` upload glob.

Exit codes: 0 = all gates hold, 1 = any gate failed.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Scenario shape — every value is passed explicitly both to the
#: server CLI and to the in-process batch run, so the two cannot
#: drift apart via argparse defaults.
SHARDS = 2
V = 9
K = 3
DURATION_MS = 300.0
INTERARRIVAL_MS = 2.0
SEED = 5
FAILURES = 2

STARTUP_TIMEOUT_S = 60.0
ARTIFACT = REPO_ROOT / "BENCH_frontend_smoke.json"


def _scenario():
    from repro.service import FleetScenario, default_failure_schedule

    return FleetScenario(
        shards=SHARDS,
        v=V,
        k=K,
        duration_ms=DURATION_MS,
        interarrival_ms=INTERARRIVAL_MS,
        workload_seed=SEED,
        failures=default_failure_schedule(
            SHARDS, V, FAILURES, DURATION_MS * 0.25
        ),
        seed=SEED,
    )


def _start_server() -> tuple[subprocess.Popen, str, int]:
    """Launch ``serve --listen`` and parse the bound address off its
    stderr ready line."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--smoke",
            "--shards",
            str(SHARDS),
            "--v",
            str(V),
            "--k",
            str(K),
            "--duration",
            str(DURATION_MS),
            "--interarrival",
            str(INTERARRIVAL_MS),
            "--failures",
            str(FAILURES),
            "--seed",
            str(SEED),
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if line.startswith("serving on "):
            host, _, port = line.split()[-1].rpartition(":")
            return proc, host, int(port)
        if not line and proc.poll() is not None:
            break
    proc.kill()
    raise RuntimeError(
        f"server never became ready (last stderr line: {line!r})"
    )


class _Client:
    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port), timeout=120)
        self._file = self._sock.makefile("rwb")

    def rpc(self, obj: dict) -> dict:
        self._file.write(json.dumps(obj).encode() + b"\n")
        self._file.flush()
        reply = json.loads(self._file.readline())
        if not reply.get("ok"):
            raise RuntimeError(f"rpc {obj.get('op')!r} failed: {reply}")
        return reply

    def close(self) -> None:
        self._file.close()
        self._sock.close()


def _submit_and_serve(client: _Client, times, is_read, lbas) -> dict:
    mid = len(times) // 2
    for lo, hi in ((0, mid), (mid, len(times))):
        client.rpc(
            {
                "op": "submit",
                "times": times[lo:hi].tolist(),
                "is_read": is_read[lo:hi].tolist(),
                "lbas": lbas[lo:hi].tolist(),
            }
        )
    return client.rpc({"op": "serve"})["report"]


def main() -> int:
    from repro.service import Fleet, canonical_payload, run_fleet_scenario
    from repro.sim import generate_request_stream

    scenario = _scenario()
    capacity = Fleet(SHARDS, V, K, seed=SEED).capacity
    times, is_read, lbas = generate_request_stream(
        scenario.workload(), DURATION_MS, capacity
    )
    batch = run_fleet_scenario(
        scenario, stream=(times, is_read, lbas)
    ).to_dict()

    def canon(payload: dict) -> str:
        return json.dumps(canonical_payload(payload), sort_keys=True)

    proc, host, port = _start_server()
    failures: list[str] = []
    stats: dict = {}
    try:
        client = _Client(host, port)
        cold = _submit_and_serve(client, times, is_read, lbas)
        warm = _submit_and_serve(client, times, is_read, lbas)
        stats = client.rpc({"op": "ping"})["runtime"]
        client.rpc({"op": "shutdown"})
        client.close()

        if canon(cold) != canon(batch):
            failures.append("cold served report differs from batch run")
        if canon(warm) != canon(cold):
            failures.append("warm served report differs from cold serve")
        if stats.get("pool_warm_hits", 0) < 1:
            failures.append(f"no pool reuse across serves: {stats}")
        if stats.get("compile_cache_hits", 0) < 1:
            failures.append(f"no compiled-artifact cache hit: {stats}")
    finally:
        try:
            stderr = proc.communicate(timeout=60)[1] or ""
        except subprocess.TimeoutExpired:
            proc.kill()
            stderr = proc.communicate()[1] or ""
            failures.append("server did not exit after shutdown op")

    if proc.returncode != 0:
        failures.append(f"server exited {proc.returncode}")
    for marker in ("resource_tracker", "Traceback"):
        if marker in stderr:
            failures.append(f"server stderr mentions {marker}:\n{stderr}")
    leaked = sorted(
        p.name
        for p in Path("/dev/shm").glob(f"repro_wrt_{proc.pid:x}_*")
    )
    if leaked:
        failures.append(f"leaked shared-memory segments: {leaked}")

    summary = {
        "requests": int(times.size),
        "serves": 2,
        "workers": 2,
        "runtime": stats,
        "leaked_segments": leaked,
        "failures": failures,
        "passed": not failures,
    }
    ARTIFACT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    for f in failures:
        print(f"smoke-frontend: FAIL: {f}")
    if not failures:
        print(
            "smoke-frontend: warm report identical to cold and batch "
            f"({times.size} requests x 2 serves, "
            f"{stats.get('pool_warm_hits', 0)} pool warm hit(s), "
            f"{stats.get('compile_cache_hits', 0)} cache hit(s)), "
            "clean shutdown, no leaked segments"
        )
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
