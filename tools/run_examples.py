#!/usr/bin/env python
"""Headless smoke runner for every script under examples/.

Each example must run to completion, unattended, with exit code 0 —
the CI docs job and `make examples-smoke` call this.  Output is
captured and only replayed on failure, so a green run stays quiet.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
TIMEOUT_S = 300


def main() -> int:
    scripts = sorted(EXAMPLES.glob("*.py"))
    if not scripts:
        print("error: no example scripts found", file=sys.stderr)
        return 2
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    # Belt and braces: examples must never block on a display or stdin.
    env.setdefault("MPLBACKEND", "Agg")
    env["PYTHONUNBUFFERED"] = "1"

    failures = 0
    for script in scripts:
        t0 = time.perf_counter()
        try:
            proc = subprocess.run(
                [sys.executable, str(script)],
                cwd=REPO,
                env=env,
                stdin=subprocess.DEVNULL,
                capture_output=True,
                text=True,
                timeout=TIMEOUT_S,
            )
            code = proc.returncode
            output = proc.stdout + proc.stderr
        except subprocess.TimeoutExpired as exc:
            code = -1
            output = (exc.stdout or "") + (exc.stderr or "") + (
                f"\n[timeout after {TIMEOUT_S}s]"
            )
        wall = time.perf_counter() - t0
        status = "ok" if code == 0 else f"FAIL (exit {code})"
        print(f"  {script.relative_to(REPO)}: {status} ({wall:.1f}s)")
        if code != 0:
            failures += 1
            sys.stdout.write(output)
    total = len(scripts)
    print(f"{total - failures}/{total} examples ran clean")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
