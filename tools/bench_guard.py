"""Compiled-path throughput regression guard (``make bench-guard``).

Re-times the sim suite's compiled-executor cases — the read-only
solver, the healthy mixed read/write path, and the degraded mixed
path — and fails when any fresh events/s figure falls below a fraction
of the committed ``BENCH_sim.json`` row.  This is the cheap tripwire
between full benchmark runs: a change that quietly knocks an engine
back onto a slow path (the solver onto the heap, the eager tier into
its fallback, the degraded planner onto per-event stepping) shows up
as a large per-case drop, far outside normal run-to-run noise.

The committed artifact is the reference, so the guard is relative to
the machine that produced it.  On a host materially slower than that
machine the threshold can be loosened (or the check skipped) with::

    BENCH_GUARD_RATIO=0.5 python tools/bench_guard.py
    BENCH_GUARD_RATIO=0 python tools/bench_guard.py   # record only

A fourth, self-relative case gates observability overhead: the mixed
path with a live ``MetricsRecorder`` attached must reach 0.95x of its
own metrics-off throughput (host speed cancels out, so no committed
row is involved).  ``BENCH_GUARD_OBS_RATIO`` overrides that floor;
``<= 0`` skips just this case.

A fifth case guards the warm serving path: repeated serves through
``repro.service.runtime.WarmRuntime`` (persistent pool + shared-memory
transport + compiled-artifact cache) must reach ``BENCH_GUARD_RATIO``
of the committed ``BENCH_service.json`` ``warm_serve`` row's warm
steady-state requests/s — a regression that silently reboots the pool,
misses the artifact cache, or re-pickles traces per serve shows up as
a large drop in exactly this figure.

The final stdout line is machine-readable JSON (prefixed
``bench-guard-json:``) with per-case ratios and, when the guard is
skipped (ratio 0), an explicit ``skip_reason`` — hosted runners can
log why no verdict bound instead of silently passing.

Exit codes: 0 = within threshold (or skipped), 1 = regression,
2 = missing/invalid committed artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Fresh throughput must reach this fraction of the committed figure
#: (>20% regression fails).  Override with BENCH_GUARD_RATIO.
DEFAULT_RATIO = 0.8
#: Timed runs per case; the best run is compared (the guard hunts
#: regressions, not noise — the best of three is stable to a few
#: percent).
RUNS = 3
#: Requests per timed run — enough to amortize compile overhead while
#: keeping the three-case guard under a few seconds.
REQUESTS = 30_000

#: The guarded cases: (BENCH_sim.json case name, read_fraction,
#: failed_disk).  Each mirrors the sim suite's config so the committed
#: row is directly comparable.
CASES = (
    ("read_only_solver", 1.0, None),
    ("mixed_rw_executor", 0.7, None),
    ("degraded_mixed_executor", 0.7, 1),
)

#: Observability overhead gate: the mixed path with a live
#: MetricsRecorder attached must reach this fraction of its own
#: metrics-off throughput (self-relative, so no committed row is
#: needed and host speed cancels out).  Override with
#: BENCH_GUARD_OBS_RATIO; <= 0 skips just this case.
OBS_RATIO = 0.95
#: Interleaved off/on run pairs for the overhead case; the verdict is
#: the best per-pair on/off ratio.
OBS_RUNS = 5


def committed_events_per_s(path: Path) -> dict[str, float]:
    payload = json.loads(path.read_text())
    rows = {
        row["case"]: float(row["batched_events_per_s"])
        for row in payload["workload"]["cases"]
    }
    missing = [name for name, _, _ in CASES if name not in rows]
    if missing:
        raise KeyError(f"cases missing from artifact: {missing}")
    return rows


def fresh_events_per_s(
    read_fraction: float, failed_disk: int | None
) -> float:
    from repro.core import get_layout
    from repro.sim import WorkloadConfig, simulate_workload

    layout = get_layout(13, 4)
    cfg = WorkloadConfig(
        interarrival_ms=5.0, read_fraction=read_fraction, seed=7
    )
    duration = 5.0 * REQUESTS

    best = 0.0
    for _ in range(RUNS):
        t0 = time.perf_counter()
        rep = simulate_workload(
            layout,
            duration_ms=duration,
            config=cfg,
            failed_disk=failed_disk,
            batched=True,
        )
        elapsed = time.perf_counter() - t0
        best = max(best, rep.scheduled / elapsed)
    return best


def committed_warm_requests_per_s(path: Path) -> float:
    payload = json.loads(path.read_text())
    return float(payload["warm_serve"]["warm_requests_per_s"])


def warm_serve_case(ratio: float, committed: float) -> dict:
    """Serve the bench suite's warm-serve scenario repeatedly through a
    warm runtime and compare the best warm requests/s against the
    committed figure (cold boot excluded — the guard times the steady
    state the runtime exists to provide)."""
    from repro.bench import (
        WARM_SERVE_MP_CONTEXT,
        WARM_SERVE_WORKERS,
        warm_serve_scenario,
    )
    from repro.service.runtime import WarmRuntime

    runtime = WarmRuntime(
        warm_serve_scenario(),
        workers=WARM_SERVE_WORKERS,
        mp_context=WARM_SERVE_MP_CONTEXT,
    )
    try:
        runtime.run()  # cold: boot the pool, build + pack the artifact
        best = 0.0
        for _ in range(RUNS):
            t0 = time.perf_counter()
            payload = runtime.run()
            elapsed = time.perf_counter() - t0
            best = max(best, payload["fleet"]["scheduled"] / elapsed)
    finally:
        runtime.close()
    floor = ratio * committed
    return {
        "fresh_requests_per_s": best,
        "committed_requests_per_s": committed,
        "ratio_vs_committed": best / committed if committed else 0.0,
        "floor_requests_per_s": floor,
        "ok": best >= floor,
    }


def obs_overhead_case(obs_ratio: float) -> dict:
    """Time the mixed path metrics-off vs metrics-on (a fresh recorder
    per run, 20-bucket grid) and compare best-of-OBS_RUNS figures.

    Off/on runs are interleaved in pairs and the verdict ratio is the
    best per-pair ``on/off`` — adjacent runs sample the same host-load
    drift, and a true regression suppresses *every* pair while noise
    cannot, so the max pair ratio is stable where the ratio of
    series bests flaps a few hundredths around the floor even when
    the true overhead is well inside it."""
    from repro.core import get_layout
    from repro.obs import MetricsRecorder
    from repro.sim import WorkloadConfig, simulate_workload

    interval = 5.0 * REQUESTS / 20.0
    layout = get_layout(13, 4)
    cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7)
    duration = 5.0 * REQUESTS

    def timed(recorder) -> float:
        t0 = time.perf_counter()
        rep = simulate_workload(
            layout,
            duration_ms=duration,
            config=cfg,
            batched=True,
            recorder=recorder,
        )
        return rep.scheduled / (time.perf_counter() - t0)

    timed(None)  # warm compile caches outside the timed pairs
    off = on = ratio = 0.0
    for _ in range(OBS_RUNS):
        o = timed(None)
        m = timed(MetricsRecorder(interval))
        off = max(off, o)
        on = max(on, m)
        if o:
            ratio = max(ratio, m / o)
    return {
        "metrics_off_events_per_s": off,
        "metrics_on_events_per_s": on,
        "ratio_on_vs_off": ratio,
        "floor_ratio": obs_ratio,
        "ok": ratio >= obs_ratio,
    }


def main() -> int:
    artifact = REPO_ROOT / "BENCH_sim.json"
    try:
        committed = committed_events_per_s(artifact)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"bench-guard: cannot read committed baseline: {exc}")
        print("bench-guard: run `python -m repro bench --suite sim` first")
        return 2
    service_artifact = REPO_ROOT / "BENCH_service.json"
    try:
        committed_warm = committed_warm_requests_per_s(service_artifact)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"bench-guard: cannot read committed warm-serve row: {exc}")
        print(
            "bench-guard: run `python -m repro bench --suite service` first"
        )
        return 2

    try:
        ratio = float(os.environ.get("BENCH_GUARD_RATIO", DEFAULT_RATIO))
    except ValueError:
        print("bench-guard: BENCH_GUARD_RATIO must be a number")
        return 2

    summary: dict = {
        "floor_ratio": ratio,
        "skipped": ratio <= 0,
        "skip_reason": (
            "BENCH_GUARD_RATIO=0 — record-only run, no verdict bound "
            "(hosted/slow runner)"
            if ratio <= 0
            else None
        ),
        "cases": {},
    }
    regressed = []
    for name, read_fraction, failed_disk in CASES:
        fresh = fresh_events_per_s(read_fraction, failed_disk)
        floor = ratio * committed[name]
        ok = fresh >= floor
        summary["cases"][name] = {
            "fresh_events_per_s": fresh,
            "committed_events_per_s": committed[name],
            "ratio_vs_committed": (
                fresh / committed[name] if committed[name] else 0.0
            ),
            "floor_events_per_s": floor,
            "ok": ok,
        }
        verdict = "OK" if ok else "REGRESSION"
        print(
            f"bench-guard: {name:<24} {fresh:>10,.0f} ev/s vs committed "
            f"{committed[name]:>10,.0f} ev/s "
            f"({fresh / committed[name]:.2f}x, floor {ratio:.2f}x) "
            f"-> {verdict}"
        )
        if not ok:
            regressed.append(name)

    if not summary["skipped"]:
        warm = warm_serve_case(ratio, committed_warm)
        summary["cases"]["warm_serve"] = warm
        verdict = "OK" if warm["ok"] else "REGRESSION"
        print(
            f"bench-guard: {'warm_serve':<24} "
            f"{warm['fresh_requests_per_s']:>10,.0f} rq/s vs committed "
            f"{warm['committed_requests_per_s']:>10,.0f} rq/s "
            f"({warm['ratio_vs_committed']:.2f}x, floor {ratio:.2f}x) "
            f"-> {verdict}"
        )
        if not warm["ok"]:
            regressed.append("warm_serve")

    try:
        obs_ratio = float(
            os.environ.get("BENCH_GUARD_OBS_RATIO", OBS_RATIO)
        )
    except ValueError:
        print("bench-guard: BENCH_GUARD_OBS_RATIO must be a number")
        return 2
    if obs_ratio > 0 and not summary["skipped"]:
        obs = obs_overhead_case(obs_ratio)
        summary["cases"]["obs_overhead"] = obs
        verdict = "OK" if obs["ok"] else "REGRESSION"
        print(
            f"bench-guard: {'obs_overhead':<24} "
            f"{obs['metrics_on_events_per_s']:>10,.0f} ev/s on vs "
            f"{obs['metrics_off_events_per_s']:>10,.0f} ev/s off "
            f"({obs['ratio_on_vs_off']:.2f}x, floor {obs_ratio:.2f}x) "
            f"-> {verdict}"
        )
        if not obs["ok"]:
            regressed.append("obs_overhead")
    elif obs_ratio <= 0:
        summary["cases"]["obs_overhead"] = {
            "skipped": True,
            "skip_reason": "BENCH_GUARD_OBS_RATIO<=0",
        }
        print("bench-guard: obs_overhead          skipped (BENCH_GUARD_OBS_RATIO<=0)")

    if summary["skipped"]:
        print(f"bench-guard: SKIPPED — {summary['skip_reason']}")
    elif regressed:
        print(
            f"bench-guard: throughput regressed by more than "
            f"{(1 - ratio) * 100:.0f}% in {', '.join(regressed)} — check "
            "the engine-selection gate in "
            "repro.sim.compile.execute_compiled, the eager tier's "
            "fallback rate in repro.sim.batchstep, and (for warm_serve) "
            "the pool/cache reuse counters in "
            "repro.service.runtime.WarmRuntime"
        )
    print("bench-guard-json: " + json.dumps(summary, sort_keys=True))
    return 1 if regressed and not summary["skipped"] else 0


if __name__ == "__main__":
    sys.exit(main())
