"""Mixed-path throughput regression guard (``make bench-guard``).

Re-times the sim suite's mixed read/write case — the one the
batch-stepped executor owns — and fails when the fresh events/s falls
below a fraction of the committed ``BENCH_sim.json`` figure.  This is
the cheap tripwire between full benchmark runs: a change that quietly
knocks the mixed engine back onto a slow path (or breaks the eager
tier's no-fallback steady state) shows up as a large drop, far outside
normal run-to-run noise.

The committed artifact is the reference, so the guard is relative to
the machine that produced it.  On a host materially slower than that
machine the threshold can be loosened (or the check skipped) with::

    BENCH_GUARD_RATIO=0.5 python tools/bench_guard.py
    BENCH_GUARD_RATIO=0 python tools/bench_guard.py   # record only

Exit codes: 0 = within threshold, 1 = regression, 2 = missing/invalid
committed artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Fresh throughput must reach this fraction of the committed figure
#: (>20% regression fails).  Override with BENCH_GUARD_RATIO.
DEFAULT_RATIO = 0.8
#: Timed runs; the best run is compared (the guard hunts regressions,
#: not noise — the best of three is stable to a few percent).
RUNS = 3


def committed_mixed_events_per_s(path: Path) -> float:
    payload = json.loads(path.read_text())
    for row in payload["workload"]["cases"]:
        if row["case"] == "mixed_rw_executor":
            return float(row["batched_events_per_s"])
    raise KeyError("mixed_rw_executor case not found")


def fresh_mixed_events_per_s() -> float:
    from repro.core import get_layout
    from repro.sim import WorkloadConfig, simulate_workload

    layout = get_layout(13, 4)
    cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7)
    duration = 5.0 * 30_000

    best = 0.0
    for _ in range(RUNS):
        t0 = time.perf_counter()
        rep = simulate_workload(
            layout, duration_ms=duration, config=cfg, batched=True
        )
        elapsed = time.perf_counter() - t0
        best = max(best, rep.scheduled / elapsed)
    return best


def main() -> int:
    artifact = REPO_ROOT / "BENCH_sim.json"
    try:
        committed = committed_mixed_events_per_s(artifact)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"bench-guard: cannot read committed baseline: {exc}")
        print("bench-guard: run `python -m repro bench --suite sim` first")
        return 2

    try:
        ratio = float(os.environ.get("BENCH_GUARD_RATIO", DEFAULT_RATIO))
    except ValueError:
        print("bench-guard: BENCH_GUARD_RATIO must be a number")
        return 2

    fresh = fresh_mixed_events_per_s()
    floor = ratio * committed
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"bench-guard: mixed path {fresh:,.0f} ev/s vs committed "
        f"{committed:,.0f} ev/s (floor {ratio:.2f}x = {floor:,.0f}) "
        f"-> {verdict}"
    )
    if fresh < floor:
        print(
            "bench-guard: mixed-path throughput regressed by more than "
            f"{(1 - ratio) * 100:.0f}% — check the engine-selection gate "
            "in repro.sim.compile.execute_compiled and the eager tier's "
            "fallback rate in repro.sim.batchstep"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
