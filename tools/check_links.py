#!/usr/bin/env python
"""Markdown link checker for the docs subsystem (no dependencies).

Usage: python tools/check_links.py README.md docs [more files/dirs...]

Checks every ``[text](target)`` and bare ``<target>`` link in the
given Markdown files (directories are scanned for ``*.md``):

* **relative targets** must exist on disk (anchors are stripped;
  ``path#section`` checks ``path``);
* **in-page anchors** (``#section``) must match a heading slug in the
  same file;
* **absolute URLs** are checked for scheme sanity only (``http``/
  ``https``) — CI must not depend on network reachability.

Exit code 0 when every link resolves; 1 otherwise, listing each
broken link as ``file:line: target (reason)``.
"""

from __future__ import annotations

import functools
import re
import sys
from pathlib import Path

# [text](target) — stop at the first unescaped ')'; images share the form.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_AUTOLINK = re.compile(r"<(https?://[^>\s]+)>")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dashes."""
    text = re.sub(r"[`*_~\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"\s+", "-", text)


def _collect_md(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"error: no such file or directory: {raw}", file=sys.stderr)
            sys.exit(2)
    return files


@functools.lru_cache(maxsize=None)
def _anchors(path: Path) -> set[str]:
    out: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING.match(line)
        if m:
            out.add(_slug(m.group(1)))
    return out


def check_file(path: Path, errors: list[str]) -> int:
    base = path.parent
    checked = 0
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets = _INLINE.findall(line) + _AUTOLINK.findall(line)
        for target in targets:
            checked += 1
            if target.startswith(("http://", "https://")):
                continue
            if target.startswith("mailto:"):
                continue
            if target.startswith("#"):
                if _slug(target[1:]) not in _anchors(path):
                    errors.append(
                        f"{path}:{lineno}: {target} (no such heading)"
                    )
                continue
            rel, _, anchor = target.partition("#")
            dest = (base / rel).resolve()
            if not dest.exists():
                errors.append(f"{path}:{lineno}: {target} (missing file)")
            elif anchor and dest.suffix == ".md":
                if _slug(anchor) not in _anchors(dest):
                    errors.append(
                        f"{path}:{lineno}: {target} (no such heading)"
                    )
    return checked


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    files = _collect_md(argv)
    errors: list[str] = []
    total = 0
    for path in files:
        total += check_file(path, errors)
    for err in errors:
        print(err, file=sys.stderr)
    print(
        f"checked {total} links across {len(files)} files: "
        f"{'OK' if not errors else f'{len(errors)} broken'}"
    )
    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
